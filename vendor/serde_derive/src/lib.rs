//! Offline stand-in for [serde_derive](https://crates.io/crates/serde_derive).
//!
//! `#[derive(Serialize)]` implemented directly on `proc_macro` token
//! streams (no syn/quote — the hermetic workspace has neither) for the
//! two shapes the workspace serializes:
//!
//! * structs with named fields — every field becomes an object member
//!   in declaration order;
//! * enums whose variants are all unit variants — serialized as the
//!   variant name string.
//!
//! Tuple structs, generics, and field attributes are rejected with a
//! compile error rather than silently mis-serialized.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` (see the crate docs for supported shapes).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match generate(input) {
        Ok(out) => out.parse().expect("generated impl parses"),
        Err(msg) => format!("compile_error!({msg:?});")
            .parse()
            .expect("error parses"),
    }
}

fn generate(input: TokenStream) -> Result<String, String> {
    let mut tokens = input.into_iter().peekable();

    // Skip attributes (`#[...]`) and visibility before the keyword.
    let kind = loop {
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next(); // the [...] group
            }
            Some(TokenTree::Ident(word)) => {
                let word = word.to_string();
                match word.as_str() {
                    "pub" => {
                        // Optional `(crate)` / `(super)` restriction.
                        if matches!(
                            tokens.peek(),
                            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                        ) {
                            tokens.next();
                        }
                    }
                    "struct" | "enum" => break word,
                    _ => return Err(format!("derive(Serialize): unexpected `{word}`")),
                }
            }
            other => return Err(format!("derive(Serialize): unexpected {other:?}")),
        }
    };

    let name = match tokens.next() {
        Some(TokenTree::Ident(name)) => name.to_string(),
        other => return Err(format!("derive(Serialize): expected a name, got {other:?}")),
    };

    let body = match tokens.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            return Err(format!(
                "derive(Serialize): generic type `{name}` is not supported by the offline stub"
            ));
        }
        other => {
            return Err(format!(
                "derive(Serialize): `{name}` must have a braced body, got {other:?}"
            ));
        }
    };

    if kind == "struct" {
        let fields = named_fields(body, &name)?;
        let mut members = String::new();
        for field in &fields {
            members.push_str(&format!("s.field({field:?}, &self.{field});\n"));
        }
        Ok(format!(
            "impl ::serde::Serialize for {name} {{\n\
             fn serialize(&self, s: &mut ::serde::Serializer) {{\n\
             s.begin_object();\n{members}s.end_object();\n}}\n}}"
        ))
    } else {
        let variants = unit_variants(body, &name)?;
        let mut arms = String::new();
        for v in &variants {
            arms.push_str(&format!("{name}::{v} => {v:?},\n"));
        }
        Ok(format!(
            "impl ::serde::Serialize for {name} {{\n\
             fn serialize(&self, s: &mut ::serde::Serializer) {{\n\
             s.write_str(match self {{\n{arms}}});\n}}\n}}"
        ))
    }
}

/// Field names of a named-field struct body, in declaration order.
fn named_fields(body: TokenStream, name: &str) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        // Skip field attributes and visibility.
        let field = loop {
            match tokens.next() {
                None => return Ok(fields),
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                }
                Some(TokenTree::Ident(word)) if word.to_string() == "pub" => {
                    if matches!(
                        tokens.peek(),
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                    ) {
                        tokens.next();
                    }
                }
                Some(TokenTree::Ident(field)) => break field.to_string(),
                other => {
                    return Err(format!(
                        "derive(Serialize): `{name}` has unsupported fields (got {other:?}); \
                         only named-field structs are supported"
                    ));
                }
            }
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => {
                return Err(format!(
                    "derive(Serialize): expected `:` after field `{field}` of `{name}`, \
                     got {other:?}"
                ));
            }
        }
        fields.push(field);
        // Consume the type: everything until a comma outside angle
        // brackets. `<`/`>` arrive as single-char puncts, so a plain
        // depth counter handles nested generics like Vec<Vec<u32>>.
        let mut angle_depth = 0i32;
        loop {
            match tokens.next() {
                None => return Ok(fields),
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => angle_depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => angle_depth -= 1,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle_depth == 0 => break,
                Some(_) => {}
            }
        }
    }
}

/// Variant names of an all-unit-variant enum body.
fn unit_variants(body: TokenStream, name: &str) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        match tokens.next() {
            None => return Ok(variants),
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
            }
            Some(TokenTree::Ident(variant)) => {
                match tokens.peek() {
                    None => {}
                    Some(TokenTree::Punct(p)) if p.as_char() == ',' => {
                        tokens.next();
                    }
                    other => {
                        return Err(format!(
                            "derive(Serialize): enum `{name}` variant `{variant}` is not a \
                             unit variant (got {other:?}); only unit enums are supported"
                        ));
                    }
                }
                variants.push(variant.to_string());
            }
            other => {
                return Err(format!(
                    "derive(Serialize): unexpected token in enum `{name}`: {other:?}"
                ));
            }
        }
    }
}
