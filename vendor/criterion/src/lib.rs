//! Offline stand-in for [criterion](https://crates.io/crates/criterion).
//!
//! Runs each benchmark closure for a short warm-up followed by a fixed
//! number of timed iterations and prints mean wall-clock time per
//! iteration. No statistical analysis, outlier rejection, HTML report,
//! or command-line filtering — just enough to keep `harness = false`
//! bench targets compiling and producing comparable numbers offline.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Identifier of one parameterized benchmark case.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form, scoped by the enclosing group.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to benchmark closures; `iter` times the workload.
pub struct Bencher {
    samples: usize,
    mean: Duration,
}

impl Bencher {
    /// Time `routine`, keeping its return value live via
    /// [`black_box`].
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: one untimed call (also triggers lazy init).
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.mean = start.elapsed() / self.samples as u32;
    }
}

fn run_one(name: &str, samples: usize, f: impl FnOnce(&mut Bencher)) {
    let mut bencher = Bencher {
        samples,
        mean: Duration::ZERO,
    };
    f(&mut bencher);
    println!("{name:<60} {:>12.3?}/iter ({samples} iters)", bencher.mean);
}

/// A named set of related benchmarks (mirrors criterion's
/// `BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Criterion uses this as the per-benchmark measurement sample
    /// count; here it caps the timed iteration count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Benchmark a closure under `group_name/id`.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.samples, f);
        self
    }

    /// Benchmark a closure that borrows a setup input.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.samples, |b| {
            f(b, input);
        });
        self
    }

    /// End the group (report finalization is a no-op here).
    pub fn finish(&mut self) {}
}

/// Benchmark driver (mirrors `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Default iteration count when a group does not call
    /// `sample_size`; small because the offline runner measures a
    /// plain mean with no early exit.
    const DEFAULT_SAMPLES: usize = 10;

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: Self::DEFAULT_SAMPLES,
            _criterion: self,
        }
    }

    /// Benchmark a standalone closure.
    pub fn bench_function(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        run_one(name, Self::DEFAULT_SAMPLES, f);
        self
    }
}

/// Bundle benchmark functions under one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
        c.bench_function("standalone", |b| b.iter(|| black_box(1 + 1)));
    }

    criterion_group!(benches, quick);

    #[test]
    fn group_and_macros_drive_benchmarks() {
        benches();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
