//! Offline stand-in for [parking_lot](https://crates.io/crates/parking_lot).
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API:
//! `lock()` returns the guard directly and a poisoned std lock is
//! transparently recovered, which matches parking_lot's behaviour of
//! not poisoning on panic.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Poison-free mutex with parking_lot's `lock()` signature.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock (no poison error, as in parking_lot).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// Poison-free reader–writer lock with parking_lot's signatures.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trips() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn lock_survives_a_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the std mutex");
        })
        .join();
        // parking_lot semantics: still lockable afterwards.
        assert_eq!(*m.lock(), 0);
    }

    #[test]
    fn rwlock_reads_and_writes() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(l.into_inner(), 6);
    }
}
