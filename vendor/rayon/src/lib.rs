//! Offline stand-in for [rayon](https://crates.io/crates/rayon).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the *API subset it actually uses* with a sequential
//! implementation. Parallel iterators execute eagerly on the calling
//! thread; `ThreadPool::install` records the requested width so
//! [`current_num_threads`] reports it, matching how the baselines size
//! their τ-thread runs. On the single-core container this loses no
//! throughput, and it keeps the simulator fully deterministic.
//!
//! Implemented surface: `prelude::*` (`IntoParallelIterator`,
//! `ParallelIterator` combinators `map`/`for_each`/`collect`,
//! `ParallelSliceMut` sorts), `ThreadPoolBuilder`, `ThreadPool::install`,
//! [`current_num_threads`] and [`join`].

use std::cell::Cell;
use std::cmp::Ordering;
use std::fmt;

thread_local! {
    /// Width of the innermost `ThreadPool::install` on this thread.
    static POOL_WIDTH: Cell<usize> = const { Cell::new(1) };
}

/// Number of worker threads of the current pool scope (1 outside any
/// [`ThreadPool::install`], the pool's configured width inside one).
pub fn current_num_threads() -> usize {
    POOL_WIDTH.with(Cell::get)
}

/// Run two closures "in parallel" (sequentially here) and return both
/// results, mirroring `rayon::join`.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// Error type of [`ThreadPoolBuilder::build`]; never produced by this
/// stand-in but kept for signature compatibility.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// A builder with default settings.
    pub fn new() -> ThreadPoolBuilder {
        ThreadPoolBuilder::default()
    }

    /// Request `num_threads` workers (0 = automatic, i.e. 1 here).
    pub fn num_threads(mut self, num_threads: usize) -> ThreadPoolBuilder {
        self.num_threads = num_threads;
        self
    }

    /// Build the pool. Infallible in this stand-in.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            width: self.num_threads.max(1),
        })
    }
}

/// A "pool" that only remembers its width; closures run on the caller.
pub struct ThreadPool {
    width: usize,
}

impl ThreadPool {
    /// Execute `op` with [`current_num_threads`] reporting this pool's
    /// width, restoring the previous width afterwards.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        POOL_WIDTH.with(|w| {
            let prev = w.replace(self.width);
            let out = op();
            w.set(prev);
            out
        })
    }
}

pub mod iter {
    //! Sequential re-implementations of the parallel iterator traits.

    /// A "parallel" iterator: a thin wrapper over a std iterator.
    pub struct Par<I>(I);

    impl<I: Iterator> Par<I> {
        /// Map each item (sequentially).
        pub fn map<F, R>(self, f: F) -> Par<std::iter::Map<I, F>>
        where
            F: FnMut(I::Item) -> R,
        {
            Par(self.0.map(f))
        }

        /// Filter items.
        pub fn filter<F>(self, f: F) -> Par<std::iter::Filter<I, F>>
        where
            F: FnMut(&I::Item) -> bool,
        {
            Par(self.0.filter(f))
        }

        /// Consume with a side-effecting closure.
        pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
            self.0.for_each(f)
        }

        /// Collect into any `FromIterator` container (order preserved).
        pub fn collect<C: FromIterator<I::Item>>(self) -> C {
            self.0.collect()
        }

        /// Sum the items.
        pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
            self.0.sum()
        }

        /// Number of items.
        pub fn count(self) -> usize {
            self.0.count()
        }
    }

    /// Mirror of `rayon::iter::IntoParallelIterator`, implemented for
    /// everything that is `IntoIterator`.
    pub trait IntoParallelIterator: IntoIterator + Sized {
        /// Convert into a (sequential) "parallel" iterator.
        fn into_par_iter(self) -> Par<Self::IntoIter> {
            Par(self.into_iter())
        }
    }

    impl<T: IntoIterator + Sized> IntoParallelIterator for T {}

    /// Mirror of `rayon::iter::IntoParallelRefIterator`: `par_iter` on
    /// anything whose reference iterates.
    pub trait IntoParallelRefIterator<'data> {
        /// The borrowed iterator type.
        type Iter: Iterator;
        /// Borrowing counterpart of `into_par_iter`.
        fn par_iter(&'data self) -> Par<Self::Iter>;
    }

    impl<'data, T: 'data + ?Sized> IntoParallelRefIterator<'data> for T
    where
        &'data T: IntoIterator,
    {
        type Iter = <&'data T as IntoIterator>::IntoIter;
        fn par_iter(&'data self) -> Par<Self::Iter> {
            Par(self.into_iter())
        }
    }

    /// Mirror of `rayon::slice::ParallelSliceMut` (sequential sorts —
    /// same results, same determinism).
    pub trait ParallelSliceMut<T> {
        /// As [`slice::sort_unstable`].
        fn par_sort_unstable(&mut self)
        where
            T: Ord;
        /// As [`slice::sort_unstable_by`].
        fn par_sort_unstable_by<F>(&mut self, compare: F)
        where
            F: FnMut(&T, &T) -> super::Ordering;
        /// As [`slice::sort_unstable_by_key`].
        fn par_sort_unstable_by_key<K: Ord, F>(&mut self, key: F)
        where
            F: FnMut(&T) -> K;
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn par_sort_unstable(&mut self)
        where
            T: Ord,
        {
            self.sort_unstable();
        }

        fn par_sort_unstable_by<F>(&mut self, compare: F)
        where
            F: FnMut(&T, &T) -> super::Ordering,
        {
            self.sort_unstable_by(compare);
        }

        fn par_sort_unstable_by_key<K: Ord, F>(&mut self, key: F)
        where
            F: FnMut(&T) -> K,
        {
            self.sort_unstable_by_key(key);
        }
    }
}

pub mod prelude {
    //! One-stop import, as in real rayon.
    pub use crate::iter::{IntoParallelIterator, IntoParallelRefIterator, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn install_scopes_the_reported_width() {
        assert_eq!(current_num_threads(), 1);
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let width = pool.install(current_num_threads);
        assert_eq!(width, 3);
        assert_eq!(current_num_threads(), 1, "restored after install");
    }

    #[test]
    fn par_iter_preserves_order() {
        let doubled: Vec<i32> = (0..10).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..10).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_sorts_sort() {
        let mut v = vec![3u32, 1, 2];
        v.par_sort_unstable_by_key(|&x| std::cmp::Reverse(x));
        assert_eq!(v, vec![3, 2, 1]);
        v.par_sort_unstable();
        assert_eq!(v, vec![1, 2, 3]);
    }
}
