//! Offline stand-in for [rand](https://crates.io/crates/rand) 0.8.
//!
//! Implements the API subset the workspace uses — `StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}` —
//! over a xoshiro256** generator seeded through SplitMix64 (the
//! standard seeding recipe). Deterministic for a given seed, which is
//! all the test suites and synthetic genome generators rely on; it is
//! NOT a cryptographic generator.

use std::ops::{Range, RangeInclusive};

/// Low-level 64-bit generator interface (subset of `rand_core`).
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Construct deterministically from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    /// Sample one value from the given generator.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types with uniform range sampling (subset of
/// `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform sample from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform sample from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                lo + (rng.next_u64() % span) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "cannot sample empty range");
                // Span of u64::MIN..=u64::MAX would wrap to 0; max(1)
                // keeps the (never-exercised) full-domain case defined.
                let span = ((hi - lo) as u64).wrapping_add(1).max(1);
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i64 - lo as i64) as u64;
                (lo as i64 + (rng.next_u64() % span) as i64) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "cannot sample empty range");
                let span = ((hi as i64 - lo as i64) as u64).wrapping_add(1).max(1);
                (lo as i64 + (rng.next_u64() % span) as i64) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(lo: f64, hi: f64, rng: &mut R) -> f64 {
        lo + f64::sample_standard(rng) * (hi - lo)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(lo: f64, hi: f64, rng: &mut R) -> f64 {
        lo + f64::sample_standard(rng) * (hi - lo)
    }
}

/// Ranges usable with [`Rng::gen_range`]. The single blanket impl per
/// range shape (rather than one impl per element type) is what lets
/// integer-literal ranges infer their type from surrounding usage,
/// exactly as with real rand.
pub trait SampleRange<T> {
    /// Sample a value of the range uniformly.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(lo, hi, rng)
    }
}

/// High-level convenience methods, auto-implemented for every
/// [`RngCore`] (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Sample a value of an inferred type from the standard
    /// distribution (uniform bits; floats in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform sample from a (half-open or inclusive) range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli trial with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stands in for rand's
    /// `StdRng`; same trait surface, different — but equally
    /// deterministic — stream).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            // SplitMix64 expansion, as recommended by the xoshiro
            // authors for seeding from a single word.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let (va, vb, vc): (u64, u64, u64) = (a.gen(), b.gen(), c.gen());
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: u8 = rng.gen_range(0u8..4);
            assert!(v < 4);
            let w = rng.gen_range(10usize..=12);
            assert!((10..=12).contains(&w));
            let x = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&x));
        }
    }

    #[test]
    fn gen_range_covers_the_domain() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn floats_are_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut acc = 0.0;
        for _ in 0..1_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            acc += f;
        }
        assert!((acc / 1_000.0 - 0.5).abs() < 0.05, "mean ~0.5");
    }

    #[test]
    fn gen_bool_tracks_p() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
