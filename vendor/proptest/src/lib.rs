//! Offline stand-in for [proptest](https://crates.io/crates/proptest).
//!
//! Provides the `proptest!` macro, integer-range and `any::<T>()`
//! strategies, `collection::vec`, and the `prop_assert*`/`prop_assume!`
//! macros, executing a configurable number of deterministic random
//! cases per test. Differences from real proptest, by design:
//!
//! * **no shrinking** — a failing case reports its inputs (via the
//!   assertion message and case number) but is not minimized;
//! * **deterministic seeding** — cases derive from a fixed seed mixed
//!   with the test's source location, so failures are reproducible
//!   run-over-run;
//! * only the strategy combinators this workspace uses are provided.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod test_runner {
    //! Case execution plumbing used by the generated test bodies.

    /// Error carried by a failed `prop_assert*` (mirrors proptest's
    /// `TestCaseError::Fail`).
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(message: String) -> TestCaseError {
            TestCaseError(message)
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }
}

/// Per-test configuration (mirrors `proptest::prelude::ProptestConfig`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        // Real proptest defaults to 256; 64 keeps the single-core CI
        // budget sane while still exercising plenty of inputs.
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic per-test generator. Seeded from the test's source
/// location so distinct tests see distinct streams.
pub fn deterministic_rng(file: &str, line: u32) -> StdRng {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in file.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h ^ u64::from(line))
}

pub mod strategy {
    //! Value-generation strategies (no shrinking).

    use rand::rngs::StdRng;
    use rand::Rng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Generate one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;
    }

    impl<T: rand::SampleUniform + Clone> Strategy for Range<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    impl<T: rand::SampleUniform + Clone> Strategy for RangeInclusive<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy of [`crate::any`]: the type's full domain.
    pub struct Any<T>(pub(crate) PhantomData<T>);

    macro_rules! impl_any_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen()
                }
            }
        )*};
    }
    impl_any_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64);

    /// Always produces a clone of one value (proptest's `Just`).
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }
}

/// Full-domain strategy for `T` (mirrors `proptest::prelude::any`).
pub fn any<T>() -> strategy::Any<T> {
    strategy::Any(std::marker::PhantomData)
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// Element-count specification of [`vec`]: a fixed size or a
    /// half-open range of sizes.
    pub struct SizeRange(Range<usize>);

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange(n..n + 1)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            SizeRange(r)
        }
    }

    /// Strategy generating `Vec`s whose length is drawn from `size` and
    /// whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy (mirrors `proptest::collection::vec`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.0.len() <= 1 {
                self.size.0.start
            } else {
                rng.gen_range(self.size.0.clone())
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop import, as in real proptest.
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    pub use crate::{test_runner::TestCaseError, ProptestConfig};
}

/// Generate `#[test]` functions that run their body over random inputs
/// drawn from the given strategies. Supports the
/// `#![proptest_config(...)]` header and multiple functions per block.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = (<$crate::ProptestConfig as ::core::default::Default>::default()); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($config:expr); ) => {};
    (config = ($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($($args:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::deterministic_rng(file!(), line!());
            for case in 0..config.cases {
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $crate::__proptest_bind!(rng; $($args)*);
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(err) = outcome {
                    ::core::panic!("proptest case {}/{} failed: {}", case + 1, config.cases, err);
                }
            }
        }
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
}

/// Argument-list muncher of [`__proptest_impl`]: turns each
/// `name in strategy` or `name: Type` argument into a generated `let`.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident;) => {};
    ($rng:ident; $arg:ident in $strat:expr $(,)?) => {
        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
    };
    ($rng:ident; $arg:ident in $strat:expr, $($restargs:tt)+) => {
        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_bind!($rng; $($restargs)+);
    };
    ($rng:ident; $arg:ident : $ty:ty $(,)?) => {
        let $arg: $ty = $crate::strategy::Strategy::generate(&$crate::any::<$ty>(), &mut $rng);
    };
    ($rng:ident; $arg:ident : $ty:ty, $($restargs:tt)+) => {
        let $arg: $ty = $crate::strategy::Strategy::generate(&$crate::any::<$ty>(), &mut $rng);
        $crate::__proptest_bind!($rng; $($restargs)+);
    };
}

/// `assert!` that reports through the proptest case runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("assertion failed: {}", ::core::stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` that reports through the proptest case runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
                    left, right
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`: {}",
                    left, right, ::std::format!($($fmt)+)
                ),
            ));
        }
    }};
}

/// `assert_ne!` that reports through the proptest case runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("assertion failed: `left != right`\n  both: `{:?}`", left),
            ));
        }
    }};
}

/// Discard the current case when an assumption does not hold. Unlike
/// real proptest the case simply counts as passed.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        /// Doc comments and config headers parse.
        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in 0usize..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn vec_sizes_and_elements_respect_strategies(
            v in crate::collection::vec(0u8..4, 2..9),
            fixed in crate::collection::vec(any::<u64>(), 5),
        ) {
            prop_assert!((2..9).contains(&v.len()));
            prop_assert!(v.iter().all(|&b| b < 4));
            prop_assert_eq!(fixed.len(), 5);
        }

        #[test]
        fn assume_discards_without_failing(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0, "only even x reach here: {}", x);
        }

        /// `name: Type` arguments desugar to `any::<Type>()`.
        #[test]
        fn typed_args_mix_with_strategies(x in 0u32..10, flag: bool, y: u8) {
            prop_assert!(x < 10);
            prop_assert!(flag || !flag);
            prop_assert!(u16::from(y) < 256);
        }
    }

    proptest! {
        #[test]
        fn default_config_block_parses(x in 0u8..255) {
            prop_assert_ne!(u32::from(x), 300u32);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_panic_with_case_context() {
        proptest! {
            #[test]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
