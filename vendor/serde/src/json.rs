//! JSON entry points (`serde_json` stand-in): stringify any
//! [`Serialize`](crate::Serialize) value, and parse arbitrary JSON
//! text into a dynamic [`Value`] for schema validation.

use crate::Serialize;

/// Serialize `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> String {
    crate::serialize_with(value, false, 0)
}

/// Serialize `value` as pretty JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> String {
    crate::serialize_with(value, true, 0)
}

/// [`to_string_pretty`] with `base_indent` extra spaces on every line
/// after the first, for embedding inside hand-built JSON documents.
pub fn to_string_pretty_indented<T: Serialize + ?Sized>(value: &T, base_indent: usize) -> String {
    crate::serialize_with(value, true, base_indent)
}

/// A dynamically-typed JSON value (the `serde_json::Value` stand-in).
///
/// Numbers are kept as `f64`; every integer the workspace emits fits
/// `f64` exactly or is only compared through [`Value::as_u64`], which
/// round-trips values up to 2^53.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in document order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member `key` of an object, if present.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if numeric and integral.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as object members.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(members) => Some(members),
            _ => None,
        }
    }
}

/// Why a JSON document failed to parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete JSON document (trailing garbage is an error).
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after the document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{text}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(self.error("unterminated string"));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.error("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.error("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not emitted by our
                            // writer; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting here.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && self.bytes[end] & 0xc0 == 0x80 {
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.error("invalid UTF-8"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse()
            .map(Value::Number)
            .map_err(|_| self.error("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": null, "d": true}, "e": "x\ny"}"#)
            .expect("valid");
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[0].as_u64(), Some(1));
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Value::Null));
        assert_eq!(v.get("e").unwrap().as_str(), Some("x\ny"));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse(r#"{"a": }"#).is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("[1] trailing").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn round_trips_through_the_writer() {
        #[derive(crate::Serialize)]
        struct Doc {
            n: u64,
            items: Vec<String>,
        }
        let doc = Doc {
            n: 42,
            items: vec!["a".into(), "b \"q\"".into()],
        };
        for text in [to_string(&doc), to_string_pretty(&doc)] {
            let v = parse(&text).expect("writer output parses");
            assert_eq!(v.get("n").unwrap().as_u64(), Some(42));
            assert_eq!(
                v.get("items").unwrap().as_array().unwrap()[1].as_str(),
                Some("b \"q\"")
            );
        }
    }
}
