//! Offline stand-in for [serde](https://crates.io/crates/serde) +
//! [serde_json](https://crates.io/crates/serde_json).
//!
//! The real serde separates data model (`Serialize`) from format
//! (`serde_json`); this workspace only ever serializes to JSON, so the
//! stand-in collapses both into one crate:
//!
//! * [`Serialize`] — implemented by hand or via the re-exported
//!   `#[derive(Serialize)]` (named-field structs and unit-variant
//!   enums, the only shapes the workspace uses);
//! * [`Serializer`] — an append-only JSON writer the trait drives;
//! * [`json::to_string`] / [`json::to_string_pretty`] — the
//!   `serde_json` entry points;
//! * [`json::parse`] / [`json::Value`] — a strict parser, used by the
//!   schema-validation tests (`serde_json::Value` stand-in).
//!
//! Divergences from real serde: no `Deserialize` derive (only the
//! dynamic [`json::Value`]), no field attributes (`rename`, `skip`,
//! …), and `Duration` serializes as `{"secs": u64, "nanos": u32}`,
//! matching serde's default struct encoding of `std::time::Duration`.

// The derive macro emits paths through `::serde`; alias ourselves so
// the in-crate tests can use the derive too.
extern crate self as serde;

use std::time::Duration;

pub mod json;

pub use serde_derive::Serialize;

/// A value that can write itself as JSON through a [`Serializer`].
pub trait Serialize {
    /// Append this value's JSON encoding to `s`.
    fn serialize(&self, s: &mut Serializer);
}

/// An append-only JSON writer with optional pretty printing.
///
/// Nesting and comma placement are tracked internally: composite
/// values call [`Serializer::begin_object`]/[`Serializer::field`]/
/// [`Serializer::end_object`] (or the array equivalents) and scalars
/// call one `write_*` method exactly once.
pub struct Serializer {
    out: String,
    pretty: bool,
    /// Extra spaces prefixed to every pretty-printed line after the
    /// first, so a value can be embedded inside hand-built JSON.
    base_indent: usize,
    depth: usize,
    /// Whether the next entry at each open nesting level needs a
    /// leading comma.
    needs_comma: Vec<bool>,
}

impl Serializer {
    fn new(pretty: bool, base_indent: usize) -> Serializer {
        Serializer {
            out: String::new(),
            pretty,
            base_indent,
            depth: 0,
            needs_comma: Vec::new(),
        }
    }

    fn newline_indent(&mut self) {
        self.out.push('\n');
        for _ in 0..self.base_indent + 2 * self.depth {
            self.out.push(' ');
        }
    }

    /// Comma/newline bookkeeping before an entry of the innermost
    /// composite.
    fn pre_entry(&mut self) {
        if let Some(needs) = self.needs_comma.last_mut() {
            if *needs {
                self.out.push(',');
            }
            *needs = true;
        }
        if self.pretty && !self.needs_comma.is_empty() {
            self.newline_indent();
        }
    }

    fn close(&mut self, delim: char, had_entries: bool) {
        self.depth -= 1;
        if self.pretty && had_entries {
            self.newline_indent();
        }
        self.out.push(delim);
    }

    /// Open a JSON object.
    pub fn begin_object(&mut self) {
        self.out.push('{');
        self.depth += 1;
        self.needs_comma.push(false);
    }

    /// Write one `"name": value` member.
    pub fn field<T: Serialize + ?Sized>(&mut self, name: &str, value: &T) {
        self.pre_entry();
        write_json_string(&mut self.out, name);
        self.out.push(':');
        if self.pretty {
            self.out.push(' ');
        }
        value.serialize(self);
    }

    /// Close the innermost object.
    pub fn end_object(&mut self) {
        let had = self.needs_comma.pop().unwrap_or(false);
        self.close('}', had);
    }

    /// Open a JSON array.
    pub fn begin_array(&mut self) {
        self.out.push('[');
        self.depth += 1;
        self.needs_comma.push(false);
    }

    /// Write one array element.
    pub fn element<T: Serialize + ?Sized>(&mut self, value: &T) {
        self.pre_entry();
        value.serialize(self);
    }

    /// Close the innermost array.
    pub fn end_array(&mut self) {
        let had = self.needs_comma.pop().unwrap_or(false);
        self.close(']', had);
    }

    /// Write an unsigned integer scalar.
    pub fn write_u64(&mut self, v: u64) {
        self.out.push_str(&v.to_string());
    }

    /// Write a signed integer scalar.
    pub fn write_i64(&mut self, v: i64) {
        self.out.push_str(&v.to_string());
    }

    /// Write a float scalar. JSON has no NaN/Infinity, so non-finite
    /// values become `null` (as serde_json does for `arbitrary` floats).
    pub fn write_f64(&mut self, v: f64) {
        if v.is_finite() {
            // `{:?}` is Rust's shortest round-trip form and always
            // includes a decimal point or exponent — valid JSON.
            self.out.push_str(&format!("{v:?}"));
        } else {
            self.out.push_str("null");
        }
    }

    /// Write a boolean scalar.
    pub fn write_bool(&mut self, v: bool) {
        self.out.push_str(if v { "true" } else { "false" });
    }

    /// Write an escaped string scalar.
    pub fn write_str(&mut self, v: &str) {
        write_json_string(&mut self.out, v);
    }

    /// Write a JSON `null`.
    pub fn write_null(&mut self) {
        self.out.push_str("null");
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

pub(crate) fn serialize_with<T: Serialize + ?Sized>(
    value: &T,
    pretty: bool,
    base_indent: usize,
) -> String {
    let mut s = Serializer::new(pretty, base_indent);
    value.serialize(&mut s);
    s.out
}

// ---- Serialize impls for the primitives the workspace uses ----

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self, s: &mut Serializer) {
                s.write_u64(*self as u64);
            }
        }
    )*};
}
impl_serialize_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self, s: &mut Serializer) {
                s.write_i64(*self as i64);
            }
        }
    )*};
}
impl_serialize_int!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn serialize(&self, s: &mut Serializer) {
        s.write_f64(f64::from(*self));
    }
}

impl Serialize for f64 {
    fn serialize(&self, s: &mut Serializer) {
        s.write_f64(*self);
    }
}

impl Serialize for bool {
    fn serialize(&self, s: &mut Serializer) {
        s.write_bool(*self);
    }
}

impl Serialize for str {
    fn serialize(&self, s: &mut Serializer) {
        s.write_str(self);
    }
}

impl Serialize for String {
    fn serialize(&self, s: &mut Serializer) {
        s.write_str(self);
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self, s: &mut Serializer) {
        (**self).serialize(s);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self, s: &mut Serializer) {
        match self {
            Some(v) => v.serialize(s),
            None => s.write_null(),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self, s: &mut Serializer) {
        s.begin_array();
        for v in self {
            s.element(v);
        }
        s.end_array();
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self, s: &mut Serializer) {
        self.as_slice().serialize(s);
    }
}

impl Serialize for Duration {
    /// serde's default encoding of `std::time::Duration`.
    fn serialize(&self, s: &mut Serializer) {
        s.begin_object();
        s.field("secs", &self.as_secs());
        s.field("nanos", &self.subsec_nanos());
        s.end_object();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Point {
        x: u32,
        y: i32,
        label: String,
    }

    impl Serialize for Point {
        fn serialize(&self, s: &mut Serializer) {
            s.begin_object();
            s.field("x", &self.x);
            s.field("y", &self.y);
            s.field("label", &self.label);
            s.end_object();
        }
    }

    #[test]
    fn compact_object() {
        let p = Point {
            x: 3,
            y: -4,
            label: "a \"b\"\n".into(),
        };
        assert_eq!(json::to_string(&p), r#"{"x":3,"y":-4,"label":"a \"b\"\n"}"#);
    }

    #[test]
    fn pretty_object_nests_with_two_space_indent() {
        let p = Point {
            x: 1,
            y: 2,
            label: "z".into(),
        };
        assert_eq!(
            json::to_string_pretty(&p),
            "{\n  \"x\": 1,\n  \"y\": 2,\n  \"label\": \"z\"\n}"
        );
    }

    #[test]
    fn arrays_options_floats_and_durations() {
        assert_eq!(json::to_string(&vec![1u32, 2, 3]), "[1,2,3]");
        assert_eq!(json::to_string(&Option::<u32>::None), "null");
        assert_eq!(json::to_string(&Some(7u32)), "7");
        assert_eq!(json::to_string(&1.5f64), "1.5");
        assert_eq!(json::to_string(&2.0f64), "2.0");
        assert_eq!(json::to_string(&f64::NAN), "null");
        assert_eq!(
            json::to_string(&Duration::new(3, 500)),
            r#"{"secs":3,"nanos":500}"#
        );
    }

    #[test]
    fn empty_composites() {
        assert_eq!(json::to_string(&Vec::<u32>::new()), "[]");
        let mut s = Serializer::new(true, 0);
        s.begin_object();
        s.end_object();
        assert_eq!(s.out, "{}");
    }

    #[test]
    fn base_indent_offsets_nested_lines_only() {
        let p = Point {
            x: 1,
            y: 2,
            label: "z".into(),
        };
        let nested = json::to_string_pretty_indented(&p, 2);
        assert_eq!(
            nested,
            "{\n    \"x\": 1,\n    \"y\": 2,\n    \"label\": \"z\"\n  }"
        );
    }
}
