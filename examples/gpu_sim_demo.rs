//! A tour of the SIMT simulator that GPUMEM runs on: launch geometry,
//! atomics, block barriers, divergence accounting, and the difference
//! between balanced and imbalanced warps — the machinery behind the
//! paper's Figure 7.
//!
//! ```text
//! cargo run --release --example gpu_sim_demo
//! ```

use gpumem::sim::primitives::device_exclusive_scan;
use gpumem::sim::{Device, DeviceSpec, GpuU32, LaunchConfig, Op};

fn main() {
    let device = Device::new(DeviceSpec::tesla_k20c());
    let spec = device.spec();
    println!(
        "device: {} — {} SMs × {} cores @ {:.2} GHz, warp size {}",
        spec.name,
        spec.sm_count,
        spec.cores_per_sm,
        spec.clock_hz / 1e9,
        spec.warp_size
    );

    // 1. A histogram kernel with atomics (the core trick of the paper's
    //    Algorithm 1 index construction).
    let data: Vec<u32> = (0..1_000_000u32)
        .map(|i| i.wrapping_mul(2654435761) % 256)
        .collect();
    let histogram = GpuU32::new(256);
    let n = data.len();
    let cfg = LaunchConfig::new(n.div_ceil(256 * 64), 256);
    let stats = device.launch_fn(cfg, |ctx| {
        let base = ctx.block_id * 256 * 64;
        ctx.simt(|lane| {
            let lo = base + lane.tid * 64;
            for i in lo..(lo + 64).min(n) {
                lane.charge(Op::GlobalLoad, 1);
                lane.atomic_add32(&histogram, data[i] as usize, 1);
            }
        });
    });
    let total: u32 = histogram.to_vec().iter().sum();
    assert_eq!(total as usize, n);
    println!(
        "histogram over {n} elements: {} blocks, {} atomics, modeled {:.3} ms",
        stats.blocks,
        stats.atomic_ops,
        stats.modeled_secs() * 1e3
    );

    // 2. Device-wide prefix sum (Algorithm 1 step 2).
    let counts = GpuU32::from_slice(&vec![3u32; 100_000]);
    let scan_stats = device_exclusive_scan(&device, &counts);
    assert_eq!(counts.load(99_999), 3 * 99_999);
    println!(
        "exclusive scan of 100k counters: modeled {:.3} ms across {} launches",
        scan_stats.modeled_secs() * 1e3,
        scan_stats.launches
    );

    // 3. Warp imbalance: one heavy lane per warp vs spread work — the
    //    effect the paper's load-balancing heuristic removes.
    let imbalanced = device.launch_fn(LaunchConfig::new(13, 256), |ctx| {
        ctx.simt(|lane| {
            let work = if lane.tid % 32 == 0 { 32_000 } else { 0 };
            lane.charge(Op::Compare, work);
        });
    });
    let balanced = device.launch_fn(LaunchConfig::new(13, 256), |ctx| {
        ctx.simt(|lane| lane.charge(Op::Compare, 1_000));
    });
    println!(
        "same total work: imbalanced warps {:.3} ms (efficiency {:.2}) vs balanced {:.3} ms (efficiency {:.2})",
        imbalanced.modeled_secs() * 1e3,
        imbalanced.warp_efficiency(32),
        balanced.modeled_secs() * 1e3,
        balanced.warp_efficiency(32)
    );
    assert!(imbalanced.modeled_secs() > balanced.modeled_secs() * 5.0);

    // 4. Divergence: lanes disagreeing on a branch serialize the warp.
    let divergent = device.launch_fn(LaunchConfig::new(1, 256), |ctx| {
        ctx.simt(|lane| {
            if lane.branch(lane.tid % 2 == 0) {
                lane.charge(Op::Alu, 100);
            } else {
                lane.charge(Op::Alu, 200);
            }
        });
    });
    println!(
        "divergent kernel: {} divergence events across {} warps",
        divergent.divergence_events, divergent.warps
    );
}
