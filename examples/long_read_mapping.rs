//! Long-read seeding: map noisy long reads to a reference using MEM
//! seeds (the use case of Liu & Schmidt 2012, cited in the paper's
//! introduction as a motivation for fast MEM extraction).
//!
//! Simulated PacBio-like reads (long, ~8% error) are concatenated into
//! one query; GPUMEM extracts MEMs once for the whole batch; each read
//! is then placed by voting over its seeds' diagonals.
//!
//! ```text
//! cargo run --release --example long_read_mapping
//! ```

use gpumem::core::{Gpumem, GpumemConfig};
use gpumem::seq::{GenomeModel, MutationModel, PackedSeq};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const READ_LEN: usize = 4_000;
const N_READS: usize = 40;
const MIN_SEED: u32 = 20;

fn main() {
    let reference = GenomeModel::mammalian().generate(300_000, 99);
    let mut rng = StdRng::seed_from_u64(100);
    let error_model = MutationModel {
        sub_rate: 0.05,
        indel_rate: 0.03,
    };

    // Sample reads and remember their true origins.
    let mut batch_codes: Vec<u8> = Vec::with_capacity(N_READS * READ_LEN);
    let mut read_spans: Vec<(usize, usize, usize)> = Vec::new(); // (batch_off, len, true_pos)
    for _ in 0..N_READS {
        let true_pos = rng.gen_range(0..reference.len() - READ_LEN);
        let raw: Vec<u8> = (true_pos..true_pos + READ_LEN)
            .map(|i| reference.code(i))
            .collect();
        let read = error_model.apply(&raw, &mut rng);
        read_spans.push((batch_codes.len(), read.len(), true_pos));
        batch_codes.extend(read);
    }
    let batch = PackedSeq::from_codes(&batch_codes);
    println!(
        "mapping {N_READS} reads of ~{READ_LEN} bp (~8% error) against a {} bp reference",
        reference.len()
    );

    // One GPUMEM pass over the whole batch.
    let config = GpumemConfig::builder(MIN_SEED)
        .seed_len(12)
        .threads_per_block(128)
        .blocks_per_tile(16)
        .build()
        .expect("valid config");
    let result = Gpumem::new(config)
        .run(&reference, &batch)
        .expect("the K20c fits this dataset");
    println!(
        "{} MEM seeds in {:.2} ms modeled device time",
        result.mems.len(),
        (result.stats.index.modeled_secs() + result.stats.matching.modeled_secs()) * 1e3
    );

    // Place each read: vote for the reference offset implied by each of
    // its seeds (r − read-local q), weighted by seed length.
    let mut correct = 0usize;
    let mut placed = 0usize;
    for &(off, len, true_pos) in &read_spans {
        let mut votes: std::collections::HashMap<i64, u64> = std::collections::HashMap::new();
        for mem in &result.mems {
            let q = mem.q as usize;
            if q >= off && q < off + len {
                let implied = i64::from(mem.r) - (q - off) as i64;
                *votes.entry(implied / 64).or_default() += u64::from(mem.len);
            }
        }
        let Some((&bucket, _)) = votes.iter().max_by_key(|(_, &w)| w) else {
            continue;
        };
        placed += 1;
        let predicted = bucket * 64;
        if (predicted - true_pos as i64).abs() <= 128 {
            correct += 1;
        }
    }
    println!("placed {placed}/{N_READS} reads; {correct} within 128 bp of the true origin");
    assert!(
        correct * 10 >= N_READS * 9,
        "expected ≥90% correct placements"
    );
    println!("≥90% of reads mapped correctly ✓");
}
