//! Whole-genome comparison: use MEMs as alignment anchors between two
//! related "chromosomes", the workload MUMmer-class tools are built for
//! (and the paper's headline use case).
//!
//! Generates a chimp/human-like pair, extracts MEMs with GPUMEM and
//! with the essaMEM baseline, verifies both agree, then chains the
//! anchors into syntenic segments with a simple co-linear chain.
//!
//! ```text
//! cargo run --release --example genome_comparison
//! ```

use gpumem::baselines::{EssaMem, MemFinder};
use gpumem::core::{Gpumem, GpumemConfig};
use gpumem::seq::{table2_pairs, Mem};

fn main() {
    // The scaled chrXc/chrXh pair (90% related, ≤3% divergence).
    let spec = &table2_pairs(1.0 / 1024.0)[1];
    let pair = spec.realize(2024);
    let min_len = 50;
    println!(
        "comparing {} ({} bp) against {} ({} bp), L = {min_len}",
        spec.reference_name,
        pair.reference.len(),
        spec.query_name,
        pair.query.len()
    );

    // GPUMEM.
    let config = GpumemConfig::builder(min_len)
        .seed_len(10)
        .threads_per_block(128)
        .blocks_per_tile(16)
        .build()
        .expect("valid config");
    let result = Gpumem::new(config)
        .run(&pair.reference, &pair.query)
        .expect("the K20c fits this dataset");
    println!(
        "GPUMEM: {} anchors, modeled device time {:.2} ms",
        result.mems.len(),
        (result.stats.index.modeled_secs() + result.stats.matching.modeled_secs()) * 1e3
    );

    // Cross-check against the strongest CPU baseline.
    let essa = EssaMem::build(&pair.reference, 4);
    let cpu = essa.find_mems(&pair.query, min_len);
    assert_eq!(result.mems, cpu, "tools must agree exactly");
    println!("essaMEM agrees on all {} anchors ✓", cpu.len());

    // Chain anchors co-linearly: longest increasing subsequence on the
    // reference coordinate over anchors sorted by query position
    // (patience algorithm, O(n log n)), then drop residual overlaps.
    let mut anchors: Vec<Mem> = result.mems;
    anchors.sort_unstable_by_key(|m| (m.q, m.r));
    let mut tails: Vec<u32> = Vec::new(); // smallest tail r per LIS length
    let mut tail_idx: Vec<usize> = Vec::new();
    let mut parent: Vec<usize> = vec![usize::MAX; anchors.len()];
    let mut lis_end = usize::MAX;
    for (i, mem) in anchors.iter().enumerate() {
        let pos = tails.partition_point(|&r| r < mem.r);
        if pos > 0 {
            parent[i] = tail_idx[pos - 1];
        }
        if pos == tails.len() {
            tails.push(mem.r);
            tail_idx.push(i);
            lis_end = i;
        } else if mem.r < tails[pos] {
            tails[pos] = mem.r;
            tail_idx[pos] = i;
        }
    }
    let mut lis: Vec<Mem> = Vec::new();
    let mut cursor = lis_end;
    while cursor != usize::MAX {
        lis.push(anchors[cursor]);
        cursor = parent[cursor];
    }
    lis.reverse();
    let mut chain: Vec<Mem> = Vec::new();
    for mem in lis {
        match chain.last() {
            Some(last) if mem.q < last.q_end() || mem.r < last.r_end() => {}
            _ => chain.push(mem),
        }
    }
    let covered: u64 = chain.iter().map(|m| u64::from(m.len)).sum();
    println!(
        "co-linear chain: {} anchors covering {} bp ({:.1}% of the query)",
        chain.len(),
        covered,
        100.0 * covered as f64 / pair.query.len() as f64
    );
    for mem in chain.iter().take(8) {
        println!(
            "  Q[{:>7}..{:>7}) ↔ R[{:>7}..{:>7})",
            mem.q,
            mem.q_end(),
            mem.r,
            mem.r_end()
        );
    }
    if chain.len() > 8 {
        println!("  … and {} more", chain.len() - 8);
    }
}
