//! Unique and rare maximal matches — the MEM variants the paper's §V
//! names as future work (MUMmer's original MUM anchors, and Ohlebusch &
//! Kurtz's rare matches).
//!
//! Extracts all MEMs with GPUMEM, then post-filters them by occurrence
//! count with suffix arrays of both sequences, on both strands.
//!
//! ```text
//! cargo run --release --example mum_extraction
//! ```

use gpumem::baselines::VariantFilter;
use gpumem::core::{Gpumem, GpumemConfig};
use gpumem::seq::{table2_pairs, Mem};

fn main() {
    // A chimp/human-like pair: highly related, so plenty of anchors.
    let spec = &table2_pairs(1.0 / 2048.0)[1];
    let pair = spec.realize(31337);
    let min_len = 30;
    println!(
        "reference {} bp, query {} bp, L = {min_len}",
        pair.reference.len(),
        pair.query.len()
    );

    let config = GpumemConfig::builder(min_len)
        .seed_len(10)
        .threads_per_block(64)
        .blocks_per_tile(8)
        .build()
        .expect("valid config");
    let mems = Gpumem::new(config)
        .run(&pair.reference, &pair.query)
        .unwrap()
        .mems;
    println!("{} MEMs", mems.len());

    let filter = VariantFilter::new(&pair.reference, &pair.query);
    let mums = filter.unique_matches(&mems);
    let rare4 = filter.rare_matches(&mems, 4);
    println!("{} rare matches (≤ 4 occurrences each side)", rare4.len());
    println!("{} MUMs (unique on both sides)", mums.len());
    assert!(mums.len() <= rare4.len() && rare4.len() <= mems.len());

    // MUMs are the classic whole-genome-alignment anchors: show the
    // co-linear backbone they form.
    let mut backbone: Vec<Mem> = mums.clone();
    backbone.sort_unstable_by_key(|m| m.q);
    println!("first MUM anchors along the query:");
    for mem in backbone.iter().take(10) {
        println!(
            "  Q[{:>7}..{:>7}) ↔ R[{:>7}..{:>7})  ({} bp)",
            mem.q,
            mem.q_end(),
            mem.r,
            mem.r_end(),
            mem.len
        );
    }
    let mum_cov: u64 = mums.iter().map(|m| u64::from(m.len)).sum();
    println!(
        "MUM coverage: {:.1}% of the query",
        100.0 * mum_cov as f64 / pair.query.len() as f64
    );
}
