//! Quickstart: extract maximal exact matches between two sequences.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use gpumem::core::{Gpumem, GpumemConfig};
use gpumem::seq::{GenomeModel, MutationModel, PackedSeq};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // A reference genome and a query derived from it (2% divergence),
    // so real MEMs exist.
    let reference = GenomeModel::mammalian().generate(200_000, 7);
    let query = {
        let model = MutationModel {
            sub_rate: 0.02,
            indel_rate: 0.002,
        };
        let mut rng = StdRng::seed_from_u64(8);
        PackedSeq::from_codes(&model.apply(&reference.to_codes(), &mut rng))
    };

    // GPUMEM with L = 40: the tool derives ℓs = 13 and the maximal
    // sparsification step Δs = L − ℓs + 1 = 28 (Eq. 1).
    let config = GpumemConfig::builder(40).build().expect("valid config");
    println!(
        "config: L={} ls={} Δs={} τ={} ℓ_block={} ℓ_tile={}",
        config.min_len,
        config.seed_len,
        config.step,
        config.threads_per_block,
        config.block_width(),
        config.tile_len()
    );

    let gpumem = Gpumem::new(config);
    let result = gpumem
        .run(&reference, &query)
        .expect("the K20c fits this dataset");

    println!(
        "found {} MEMs over a {} x {} search space ({} tile rows x {} cols)",
        result.mems.len(),
        reference.len(),
        query.len(),
        result.stats.rows,
        result.stats.cols
    );
    println!(
        "modeled device time: index {:.3} ms + matching {:.3} ms; warp efficiency {:.2}",
        result.stats.index.modeled_secs() * 1e3,
        result.stats.matching.modeled_secs() * 1e3,
        result.stats.matching.warp_efficiency(32),
    );
    println!("longest five:");
    let mut by_len = result.mems.clone();
    by_len.sort_unstable_by_key(|m| std::cmp::Reverse(m.len));
    for mem in by_len.iter().take(5) {
        println!(
            "  R[{:>7}..] = Q[{:>7}..] for {:>6} bp",
            mem.r, mem.q, mem.len
        );
    }

    // Every reported triplet satisfies the MEM definition.
    assert!(result
        .mems
        .iter()
        .all(|&m| gpumem::seq::is_maximal_exact(&reference, &query, m, 40)));
    println!("all MEMs verified maximal-exact ✓");
}
