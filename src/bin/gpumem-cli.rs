//! Command-line MEM extraction, MUMmer-style.
//!
//! ```text
//! gpumem-cli [OPTIONS] <reference.fa> <query.fa>
//!
//! OPTIONS:
//!   --tool <gpumem|mummer|essamem|sparsemem|slamem>   finder (default gpumem)
//!   --min-len <L>        minimum MEM length (default 20)
//!   --seed-len <ls>      GPUMEM seed length (default min(13, L))
//!   --sparseness <K>     sparse-SA sparseness for essamem/sparsemem (default 4)
//!   --threads <t>        CPU finder threads (default 1)
//!   --both-strands       also match the reverse complement of the query
//!   --mum                report only maximal unique matches
//!   --rare <t>           report matches occurring ≤ t times in each sequence
//!   --stats              print run statistics to stderr
//!   --sanitize           run kernels under the shadow-memory hazard
//!                        sanitizer; report to stderr, fail on hazards
//! ```
//!
//! Output: one `ref_pos  query_pos  length  strand` line per match,
//! 1-based coordinates as in `mummer -maxmatch`.

use std::fs::File;
use std::io::BufReader;
use std::process::ExitCode;

use gpumem::baselines::{
    find_mems_both_strands, EssaMem, MemFinder, Mummer, SlaMem, SparseMem, VariantFilter,
};
use gpumem::core::{Gpumem, GpumemConfig};
use gpumem::seq::{read_fasta, AmbigPolicy, Mem, PackedSeq, Strand, StrandMem};

struct Options {
    tool: String,
    min_len: u32,
    seed_len: Option<usize>,
    sparseness: usize,
    threads: usize,
    both_strands: bool,
    mum: bool,
    rare: Option<usize>,
    stats: bool,
    sanitize: bool,
    reference: String,
    query: String,
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let mut opts = Options {
        tool: "gpumem".into(),
        min_len: 20,
        seed_len: None,
        sparseness: 4,
        threads: 1,
        both_strands: false,
        mum: false,
        rare: None,
        stats: false,
        sanitize: false,
        reference: String::new(),
        query: String::new(),
    };
    let mut positional = Vec::new();
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match arg.as_str() {
            "--tool" => opts.tool = value("--tool")?,
            "--min-len" => {
                opts.min_len = value("--min-len")?
                    .parse()
                    .map_err(|e| format!("bad --min-len: {e}"))?
            }
            "--seed-len" => {
                opts.seed_len = Some(
                    value("--seed-len")?
                        .parse()
                        .map_err(|e| format!("bad --seed-len: {e}"))?,
                )
            }
            "--sparseness" => {
                opts.sparseness = value("--sparseness")?
                    .parse()
                    .map_err(|e| format!("bad --sparseness: {e}"))?
            }
            "--threads" => {
                opts.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("bad --threads: {e}"))?
            }
            "--both-strands" => opts.both_strands = true,
            "--mum" => opts.mum = true,
            "--rare" => {
                opts.rare = Some(
                    value("--rare")?
                        .parse()
                        .map_err(|e| format!("bad --rare: {e}"))?,
                )
            }
            "--stats" => opts.stats = true,
            "--sanitize" => opts.sanitize = true,
            "--help" | "-h" => return Err("help".into()),
            other if other.starts_with("--") => return Err(format!("unknown option {other}")),
            other => positional.push(other.to_string()),
        }
    }
    match positional.len() {
        2 => {
            opts.reference = positional.remove(0);
            opts.query = positional.remove(0);
            Ok(opts)
        }
        n => Err(format!(
            "expected <reference.fa> <query.fa>, got {n} positionals"
        )),
    }
}

fn load_first_record(path: &str) -> Result<PackedSeq, String> {
    let file = File::open(path).map_err(|e| format!("{path}: {e}"))?;
    let records = read_fasta(BufReader::new(file), AmbigPolicy::Randomize(0))
        .map_err(|e| format!("{path}: {e}"))?;
    records
        .into_iter()
        .next()
        .map(|r| r.seq)
        .ok_or_else(|| format!("{path}: no FASTA records"))
}

fn run_finder(
    opts: &Options,
    reference: &PackedSeq,
    query: &PackedSeq,
) -> Result<Vec<StrandMem>, String> {
    let finder: Box<dyn MemFinder> = match opts.tool.as_str() {
        "mummer" => Box::new(Mummer::build(reference)),
        "essamem" => Box::new(EssaMem::build(reference, opts.sparseness)),
        "sparsemem" => Box::new(SparseMem::build(reference, opts.sparseness)),
        "slamem" => Box::new(SlaMem::build(reference)),
        "gpumem" => {
            // GPUMEM path handled separately (simulated device).
            let mut builder = GpumemConfig::builder(opts.min_len)
                .threads_per_block(128)
                .blocks_per_tile(16);
            if let Some(seed_len) = opts.seed_len {
                builder = builder.seed_len(seed_len);
            }
            let config = builder.build().map_err(|e| e.to_string())?;
            let gpumem = Gpumem::new(config);
            let run_one = |q: &PackedSeq| gpumem.run(reference, q);
            let forward = run_one(query);
            if opts.stats {
                eprintln!(
                    "gpumem: {} tiles, modeled index {:.3} ms + match {:.3} ms, warp efficiency {:.2}",
                    forward.stats.rows * forward.stats.cols,
                    forward.stats.index.modeled_secs() * 1e3,
                    forward.stats.matching.modeled_secs() * 1e3,
                    forward.stats.matching.warp_efficiency(32)
                );
            }
            let mut hits: Vec<StrandMem> = forward
                .mems
                .into_iter()
                .map(|mem| StrandMem {
                    mem,
                    strand: Strand::Forward,
                })
                .collect();
            if opts.both_strands {
                let rc = query.reverse_complement();
                hits.extend(run_one(&rc).mems.into_iter().map(|mem| StrandMem {
                    mem: gpumem::seq::map_reverse_mem(mem, query.len()),
                    strand: Strand::Reverse,
                }));
            }
            hits.sort_unstable();
            return Ok(hits);
        }
        other => return Err(format!("unknown tool {other}")),
    };
    if opts.both_strands {
        Ok(find_mems_both_strands(
            finder.as_ref(),
            query,
            opts.min_len,
            opts.threads,
        ))
    } else {
        Ok(gpumem::baselines::find_mems_parallel(
            finder.as_ref(),
            query,
            opts.min_len,
            opts.threads,
        )
        .into_iter()
        .map(|mem| StrandMem {
            mem,
            strand: Strand::Forward,
        })
        .collect())
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(msg) => {
            if msg != "help" {
                eprintln!("error: {msg}\n");
            }
            eprintln!("usage: gpumem-cli [--tool T] [--min-len L] [--seed-len ls] [--sparseness K] [--threads t] [--both-strands] [--mum] [--rare t] [--stats] [--sanitize] <reference.fa> <query.fa>");
            return if msg == "help" {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(2)
            };
        }
    };

    let run = || -> Result<(), String> {
        let reference = load_first_record(&opts.reference)?;
        let query = load_first_record(&opts.query)?;

        // Under --sanitize every simulated kernel launch between here
        // and finish() is hazard-checked (only the gpumem tool launches
        // kernels; for CPU baselines the report is trivially clean).
        let session = opts.sanitize.then(gpumem::sim::sanitizer::Session::start);
        let mut hits = run_finder(&opts, &reference, &query)?;
        if let Some(session) = session {
            let report = session.finish();
            eprint!("{report}");
            if !report.is_clean() {
                return Err(format!(
                    "sanitizer detected {} hazard(s)",
                    report.hazards.len() as u64 + report.suppressed
                ));
            }
        }

        // Variant filtering (forward-strand coordinates only; reverse
        // hits are filtered against the reverse complement implicitly
        // via their reference interval).
        if opts.mum || opts.rare.is_some() {
            let max_occ = if opts.mum { 1 } else { opts.rare.unwrap() };
            let filter = VariantFilter::new(&reference, &query);
            let mems: Vec<Mem> = hits.iter().map(|h| h.mem).collect();
            let keep: std::collections::HashSet<Mem> =
                filter.rare_matches(&mems, max_occ).into_iter().collect();
            hits.retain(|h| keep.contains(&h.mem));
        }

        if opts.stats {
            eprintln!("{} matches (L >= {})", hits.len(), opts.min_len);
        }
        let mut out = String::new();
        for hit in &hits {
            let strand = match hit.strand {
                Strand::Forward => '+',
                Strand::Reverse => '-',
            };
            out.push_str(&format!(
                "{:>10} {:>10} {:>8} {}\n",
                hit.mem.r + 1,
                hit.mem.q + 1,
                hit.mem.len,
                strand
            ));
        }
        print!("{out}");
        Ok(())
    };
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
