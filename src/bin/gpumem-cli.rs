//! Command-line MEM extraction, MUMmer-style.
//!
//! ```text
//! gpumem-cli run [OPTIONS] <reference.fa> <query.fa>   extract MEMs
//! gpumem-cli registry <add|list|evict-stats> ...       manage a reference set
//! gpumem-cli metrics export [OPTIONS] <ref.fa> <query.fa>
//!                                                      run a batch, print the unified
//!                                                      telemetry exposition
//! gpumem-cli bench-info [--min-len L]                  device catalog + tile geometry
//! gpumem-cli bench-info --check [--max-regress R] [--history f]
//!                                                      flag regressions against the
//!                                                      recorded bench trajectory
//!
//! The bare flag form `gpumem-cli [OPTIONS] <ref> <query>` still works
//! as an alias for `run` but is deprecated (a note goes to stderr).
//!
//! RUN OPTIONS:
//!   --tool <gpumem|mummer|essamem|sparsemem|slamem>   finder (default gpumem)
//!   --min-len <L>        minimum MEM length (default 20)
//!   --seed-len <ls>      GPUMEM seed length (default min(13, L))
//!   --seed-mode <m>      GPUMEM seed sampling: `ref` (reference-only,
//!                        Eq. 1 sparsification, default) or
//!                        `dual[:k1,k2]` (copMEM-style dual-genome
//!                        sampling with co-prime steps; omitting k1,k2
//!                        picks the largest valid pair automatically)
//!   --sparseness <K>     sparse-SA sparseness for essamem/sparsemem (default 4)
//!   --threads <t>        CPU finder threads (default 1)
//!   --query-threads <n>  GPUMEM query workers for multi-record query
//!                        FASTA (default 1)
//!   --shards <n>         split each query's tile rows across n
//!                        simulated devices and merge (default 1; the
//!                        merged MEM set is byte-identical to n = 1)
//!   --schedule-policy <inorder|mass>
//!                        GPUMEM tile launch order: grid order
//!                        (default) or heaviest sampled seed-occurrence
//!                        mass first (LPT-style straggler avoidance)
//!   --work-stealing      GPUMEM persistent-block work stealing: the
//!                        generate/expand steps drain a per-block chunk
//!                        queue instead of the static split
//!   --query-staging      GPUMEM shared-memory query staging: blocks
//!                        park their query window in shared memory
//!   --both-strands       also match the reverse complement of the query
//!   --mum                report only maximal unique matches
//!   --rare <t>           report matches occurring ≤ t times in each sequence
//!   --stats              print run statistics to stderr
//!   --sanitize           run kernels under the shadow-memory hazard
//!                        sanitizer; report to stderr, fail on hazards
//!   --trace <path>       write a Chrome Trace Event JSON of the run
//!                        (open in Perfetto / chrome://tracing);
//!                        gpumem only
//!   --metrics <path>     write the serving engine's metrics snapshot
//!                        (latency histogram, index-cache, workers) as
//!                        JSON; gpumem only
//!   --profile            print a per-stage/per-phase profile table to
//!                        stderr; gpumem only
//! ```
//!
//! The query FASTA may hold many records; each is matched independently
//! (GPUMEM serves them all from one cached reference session, in
//! parallel across `--query-threads` workers). Output: one
//! `ref_pos  query_pos  length  strand` line per match, 1-based
//! coordinates as in `mummer -maxmatch`, grouped by query record in
//! input order; with more than one query record, each line gains the
//! record name as a final column.
//!
//! `registry` manages a plain-text handle file (`name  path  min_len
//! seed_len`, tab-separated, `#gpumem-registry v1` header):
//!
//! ```text
//! gpumem-cli registry add <handles.tsv> <name> <reference.fa>
//!            [--min-len L] [--seed-len ls]     validate + append an entry
//! gpumem-cli registry list <handles.tsv>       table of hosted references
//! gpumem-cli registry evict-stats <handles.tsv>
//!            [--budget <bytes>] [--rounds N]   warm every reference in
//!                                              rounds under the byte
//!                                              budget, print the
//!                                              registry counters as JSON
//! ```
//!
//! `metrics export` runs a query batch through a registry-hosted engine
//! and prints every serving counter on stdout in Prometheus text format
//! (default) or the registry JSON shape — the same exposition a scraper
//! would pull from a serving daemon:
//!
//! ```text
//! gpumem-cli metrics export [--format prometheus|json] [--min-len L]
//!            [--seed-len ls] [--query-threads n] [--shards n]
//!            [--journal events.jsonl] <reference.fa> <query.fa>
//! ```
//!
//! `--journal` additionally streams the structured event journal
//! (run-lifecycle, index-build, registry pin/evict, shard dispatch) to a
//! JSONL file, one event object per line.
//!
//! `bench-info --check` reads the bench trajectory the `quick` bench
//! appends to `results/bench_history.jsonl` and fails (exit 1) if the
//! latest entry regresses more than `--max-regress` (default 0.20)
//! against the best earlier entry — the local mirror of the CI
//! bench-smoke gate.

use std::fs::File;
use std::io::BufReader;
use std::process::ExitCode;
use std::sync::Arc;

use gpumem::baselines::{
    find_mems_both_strands, EssaMem, MemFinder, Mummer, SlaMem, SparseMem, VariantFilter,
};
use gpumem::core::telemetry;
use gpumem::index::{check_dual_steps, max_coprime_steps};
use gpumem::seq::{
    read_fasta, AmbigPolicy, FastaRecord, Mem, PackedSeq, SeqSet, Strand, StrandMem,
};
use gpumem::sim::{Device, DeviceSpec, LaunchStats};
use gpumem::{
    Engine, EventSink, GpumemConfig, GpumemResult, JsonlEventSink, Registry, RunError, RunOptions,
    RunRequest, SchedulePolicy, SeedMode, Trace,
};

struct Options {
    tool: String,
    min_len: u32,
    seed_len: Option<usize>,
    seed_mode: String,
    sparseness: usize,
    threads: usize,
    query_threads: usize,
    shards: usize,
    schedule_policy: SchedulePolicy,
    work_stealing: bool,
    query_staging: bool,
    both_strands: bool,
    mum: bool,
    rare: Option<usize>,
    stats: bool,
    sanitize: bool,
    trace: Option<String>,
    metrics: Option<String>,
    profile: bool,
    reference: String,
    query: String,
}

fn parse_args(argv: &[String]) -> Result<Options, String> {
    let mut args = argv.iter().cloned();
    let mut opts = Options {
        tool: "gpumem".into(),
        min_len: 20,
        seed_len: None,
        seed_mode: "ref".into(),
        sparseness: 4,
        threads: 1,
        query_threads: 1,
        shards: 1,
        schedule_policy: SchedulePolicy::InOrder,
        work_stealing: false,
        query_staging: false,
        both_strands: false,
        mum: false,
        rare: None,
        stats: false,
        sanitize: false,
        trace: None,
        metrics: None,
        profile: false,
        reference: String::new(),
        query: String::new(),
    };
    let mut positional = Vec::new();
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match arg.as_str() {
            "--tool" => opts.tool = value("--tool")?,
            "--min-len" => {
                opts.min_len = value("--min-len")?
                    .parse()
                    .map_err(|e| format!("bad --min-len: {e}"))?
            }
            "--seed-len" => {
                opts.seed_len = Some(
                    value("--seed-len")?
                        .parse()
                        .map_err(|e| format!("bad --seed-len: {e}"))?,
                )
            }
            "--seed-mode" => opts.seed_mode = value("--seed-mode")?,
            "--sparseness" => {
                opts.sparseness = value("--sparseness")?
                    .parse()
                    .map_err(|e| format!("bad --sparseness: {e}"))?
            }
            "--threads" => {
                opts.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("bad --threads: {e}"))?
            }
            "--query-threads" => {
                opts.query_threads = value("--query-threads")?
                    .parse()
                    .map_err(|e| format!("bad --query-threads: {e}"))?;
                if opts.query_threads == 0 {
                    return Err("bad --query-threads: must be positive".into());
                }
            }
            "--shards" => {
                opts.shards = value("--shards")?
                    .parse()
                    .map_err(|e| format!("bad --shards: {e}"))?;
                if opts.shards == 0 {
                    return Err("bad --shards: must be positive".into());
                }
            }
            "--schedule-policy" => {
                opts.schedule_policy = match value("--schedule-policy")?.as_str() {
                    "inorder" => SchedulePolicy::InOrder,
                    "mass" => SchedulePolicy::MassDescending,
                    other => {
                        return Err(format!(
                            "bad --schedule-policy {other}: expected inorder or mass"
                        ))
                    }
                }
            }
            "--work-stealing" => opts.work_stealing = true,
            "--query-staging" => opts.query_staging = true,
            "--both-strands" => opts.both_strands = true,
            "--mum" => opts.mum = true,
            "--rare" => {
                opts.rare = Some(
                    value("--rare")?
                        .parse()
                        .map_err(|e| format!("bad --rare: {e}"))?,
                )
            }
            "--stats" => opts.stats = true,
            "--sanitize" => opts.sanitize = true,
            "--trace" => opts.trace = Some(value("--trace")?),
            "--metrics" => opts.metrics = Some(value("--metrics")?),
            "--profile" => opts.profile = true,
            "--help" | "-h" => return Err("help".into()),
            other if other.starts_with("--") => return Err(format!("unknown option {other}")),
            other => positional.push(other.to_string()),
        }
    }
    match positional.len() {
        2 => {
            opts.reference = positional.remove(0);
            opts.query = positional.remove(0);
            Ok(opts)
        }
        n => Err(format!(
            "expected <reference.fa> <query.fa>, got {n} positionals"
        )),
    }
}

/// Resolve `--seed-mode ref|dual[:k1,k2]`. The auto `dual` form picks
/// the largest valid co-prime pair for `(L, ℓs)`; explicit pairs are
/// validated here so the structured [`gpumem::index::IndexError`]
/// message (non-co-prime, product over the coverage bound) reaches the
/// user before any index work starts.
fn parse_seed_mode(spec: &str, min_len: u32, seed_len: usize) -> Result<SeedMode, String> {
    if spec == "ref" {
        return Ok(SeedMode::RefOnly);
    }
    let rest = spec
        .strip_prefix("dual")
        .ok_or_else(|| format!("bad --seed-mode {spec}: expected ref or dual[:k1,k2]"))?;
    let (k1, k2) = if rest.is_empty() {
        max_coprime_steps(min_len, seed_len).map_err(|e| format!("bad --seed-mode: {e}"))?
    } else {
        let body = rest
            .strip_prefix(':')
            .and_then(|body| body.split_once(','))
            .ok_or_else(|| format!("bad --seed-mode {spec}: expected dual:<k1>,<k2>"))?;
        let k1 = body
            .0
            .parse()
            .map_err(|e| format!("bad --seed-mode k1: {e}"))?;
        let k2 = body
            .1
            .parse()
            .map_err(|e| format!("bad --seed-mode k2: {e}"))?;
        check_dual_steps(k1, k2, min_len, seed_len).map_err(|e| format!("bad --seed-mode: {e}"))?;
        (k1, k2)
    };
    Ok(SeedMode::DualSampled { k1, k2 })
}

fn load_records(path: &str) -> Result<Vec<FastaRecord>, String> {
    let file = File::open(path).map_err(|e| format!("{path}: {e}"))?;
    let records = read_fasta(BufReader::new(file), AmbigPolicy::Randomize(0))
        .map_err(|e| format!("{path}: {e}"))?;
    if records.is_empty() {
        return Err(format!("{path}: no FASTA records"));
    }
    Ok(records)
}

fn load_first_record(path: &str) -> Result<PackedSeq, String> {
    Ok(load_records(path)?.remove(0).seq)
}

/// One query record's matches, in that record's coordinates.
struct RecordHits {
    name: String,
    hits: Vec<StrandMem>,
}

/// Turn a batch result into per-record results, surfacing the first
/// failed query as the CLI error.
fn collect_batch(
    queries: &SeqSet,
    results: Vec<Result<GpumemResult, RunError>>,
) -> Result<Vec<GpumemResult>, String> {
    results
        .into_iter()
        .zip(&queries.records)
        .map(|(result, span)| result.map_err(|e| format!("query {}: {e}", span.name)))
        .collect()
}

/// Run a batch under explicit [`RunOptions`] and keep only the results.
fn batch_results(
    engine: &Engine,
    queries: &SeqSet,
    options: &RunOptions,
) -> Vec<Result<GpumemResult, RunError>> {
    engine
        .execute(&RunRequest::batch(queries).options(options.clone()))
        .into_iter()
        .map(|r| r.map(|out| out.result))
        .collect()
}

fn run_gpumem(
    opts: &Options,
    reference: &PackedSeq,
    queries: &SeqSet,
) -> Result<Vec<RecordHits>, String> {
    // Mirror the builder's seed-length default so `--seed-mode dual`
    // derives its co-prime pair from the length the index will use.
    let seed_len = opts
        .seed_len
        .unwrap_or_else(|| 13usize.min(opts.min_len as usize));
    let seed_mode = parse_seed_mode(&opts.seed_mode, opts.min_len, seed_len)?;
    let mut builder = GpumemConfig::builder(opts.min_len)
        .threads_per_block(128)
        .blocks_per_tile(16)
        .seed_mode(seed_mode)
        .schedule_policy(opts.schedule_policy)
        .work_stealing(opts.work_stealing)
        .query_staging(opts.query_staging);
    if let Some(seed_len) = opts.seed_len {
        builder = builder.seed_len(seed_len);
    }
    let config = builder.build().map_err(|e| e.to_string())?;
    // Host the session in a (single-reference, unbounded) registry so
    // `--metrics` exports the registry counters alongside the serving
    // metrics; the spec stays the paper's Tesla K20c.
    let registry = Arc::new(Registry::new(DeviceSpec::tesla_k20c()));
    let engine = Engine::builder(reference.clone())
        .config(config)
        .registry(Arc::clone(&registry))
        .name("cli")
        .threads(opts.query_threads)
        .build()
        .map_err(|e| e.to_string())?;
    let options = RunOptions {
        shards: opts.shards,
        ..RunOptions::default()
    };

    // Tracing serializes queries onto worker 0 so each gets its own
    // span tree; the merged trace lays the queries out one per track.
    let tracing = opts.trace.is_some() || opts.profile;
    let mut traces = Vec::new();
    let forward = if tracing {
        let traced = RunOptions {
            trace: true,
            ..options.clone()
        };
        let mut results = Vec::with_capacity(queries.records.len());
        for (i, span) in queries.records.iter().enumerate() {
            let query = queries.record_seq(i);
            let out = engine
                .execute(&RunRequest::query(&query).options(traced.clone()))
                .pop()
                .expect("one query yields one output")
                .map_err(|e| format!("query {}: {e}", span.name))?;
            results.push(out.result);
            traces.push(out.trace.expect("traced run records a trace"));
        }
        results
    } else {
        collect_batch(queries, batch_results(&engine, queries, &options))?
    };
    let reverse = if opts.both_strands {
        // Reverse-complement each record independently; coordinates map
        // back per record.
        let rc_records: Vec<FastaRecord> = queries
            .records
            .iter()
            .enumerate()
            .map(|(i, span)| FastaRecord {
                header: span.name.clone(),
                seq: queries.record_seq(i).reverse_complement(),
            })
            .collect();
        let rc_set = SeqSet::from_records(&rc_records);
        Some(collect_batch(
            queries,
            batch_results(&engine, &rc_set, &options),
        )?)
    } else {
        None
    };

    if opts.stats {
        let tiles: usize = forward.iter().map(|r| r.stats.rows * r.stats.cols).sum();
        let index: LaunchStats = forward.iter().map(|r| r.stats.index.clone()).sum();
        let matching: LaunchStats = forward.iter().map(|r| r.stats.matching.clone()).sum();
        eprintln!(
            "gpumem: {} tiles, modeled index {:.3} ms + match {:.3} ms, warp efficiency {:.2}",
            tiles,
            index.modeled_secs() * 1e3,
            matching.modeled_secs() * 1e3,
            matching.warp_efficiency(32)
        );
    }

    if tracing {
        let trace = Trace::merge(traces);
        if let Some(path) = &opts.trace {
            std::fs::write(path, trace.to_chrome_json()).map_err(|e| format!("{path}: {e}"))?;
        }
        if opts.profile {
            eprint!("{}", trace.profile_report());
        }
    }
    if let Some(path) = &opts.metrics {
        std::fs::write(path, engine.metrics().to_json()).map_err(|e| format!("{path}: {e}"))?;
    }

    let mut out = Vec::with_capacity(queries.records.len());
    for (i, span) in queries.records.iter().enumerate() {
        let mut hits: Vec<StrandMem> = forward[i]
            .mems
            .iter()
            .map(|&mem| StrandMem {
                mem,
                strand: Strand::Forward,
            })
            .collect();
        if let Some(reverse) = &reverse {
            hits.extend(reverse[i].mems.iter().map(|&mem| StrandMem {
                mem: gpumem::seq::map_reverse_mem(mem, span.len),
                strand: Strand::Reverse,
            }));
        }
        hits.sort_unstable();
        out.push(RecordHits {
            name: span.name.clone(),
            hits,
        });
    }
    Ok(out)
}

fn run_finder(
    opts: &Options,
    reference: &PackedSeq,
    queries: &SeqSet,
) -> Result<Vec<RecordHits>, String> {
    if opts.tool != "gpumem" && (opts.trace.is_some() || opts.metrics.is_some() || opts.profile) {
        return Err(format!(
            "--trace/--metrics/--profile require --tool gpumem (got {})",
            opts.tool
        ));
    }
    let finder: Box<dyn MemFinder> = match opts.tool.as_str() {
        "mummer" => Box::new(Mummer::build(reference)),
        "essamem" => Box::new(EssaMem::build(reference, opts.sparseness)),
        "sparsemem" => Box::new(SparseMem::build(reference, opts.sparseness)),
        "slamem" => Box::new(SlaMem::build(reference)),
        // GPUMEM path handled separately (simulated device, batch
        // engine).
        "gpumem" => return run_gpumem(opts, reference, queries),
        other => return Err(format!("unknown tool {other}")),
    };
    let mut out = Vec::with_capacity(queries.records.len());
    for (i, span) in queries.records.iter().enumerate() {
        let query = queries.record_seq(i);
        let hits = if opts.both_strands {
            find_mems_both_strands(finder.as_ref(), &query, opts.min_len, opts.threads)
        } else {
            gpumem::baselines::find_mems_parallel(
                finder.as_ref(),
                &query,
                opts.min_len,
                opts.threads,
            )
            .into_iter()
            .map(|mem| StrandMem {
                mem,
                strand: Strand::Forward,
            })
            .collect()
        };
        out.push(RecordHits {
            name: span.name.clone(),
            hits,
        });
    }
    Ok(out)
}

fn usage() {
    eprintln!(
        "usage: gpumem-cli run [--tool T] [--min-len L] [--seed-len ls] [--seed-mode ref|dual[:k1,k2]] [--sparseness K] [--threads t] [--query-threads n] [--shards n] [--schedule-policy inorder|mass] [--work-stealing] [--query-staging] [--both-strands] [--mum] [--rare t] [--stats] [--sanitize] [--trace out.json] [--metrics out.json] [--profile] <reference.fa> <query.fa>\n       gpumem-cli registry add <handles.tsv> <name> <reference.fa> [--min-len L] [--seed-len ls]\n       gpumem-cli registry list <handles.tsv>\n       gpumem-cli registry evict-stats <handles.tsv> [--budget bytes] [--rounds N]\n       gpumem-cli metrics export [--format prometheus|json] [--min-len L] [--seed-len ls] [--query-threads n] [--shards n] [--journal events.jsonl] <reference.fa> <query.fa>\n       gpumem-cli bench-info [--min-len L] [--check [--max-regress R] [--history results/bench_history.jsonl]]"
    );
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        Some("run") => run_main(&argv[1..]),
        Some("registry") => to_exit_code(registry_main(&argv[1..])),
        Some("metrics") => to_exit_code(metrics_main(&argv[1..])),
        Some("bench-info") => to_exit_code(bench_info_main(&argv[1..])),
        Some("--help") | Some("-h") => {
            usage();
            ExitCode::SUCCESS
        }
        None => {
            usage();
            ExitCode::from(2)
        }
        _ => {
            // The pre-subcommand flag form: keep it working, nudge once.
            eprintln!("note: flag-style invocation is deprecated; use `gpumem-cli run ...`");
            run_main(&argv)
        }
    }
}

fn to_exit_code(result: Result<(), String>) -> ExitCode {
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// One line of a registry handle file.
struct HandleEntry {
    name: String,
    path: String,
    min_len: u32,
    seed_len: Option<usize>,
}

const HANDLE_HEADER: &str = "#gpumem-registry v1";

fn read_handle_file(path: &str) -> Result<Vec<HandleEntry>, String> {
    let body = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut lines = body.lines();
    if lines.next().map(str::trim) != Some(HANDLE_HEADER) {
        return Err(format!("{path}: missing `{HANDLE_HEADER}` header"));
    }
    let mut entries = Vec::new();
    for (n, line) in lines.enumerate() {
        if line.trim().is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        if fields.len() != 4 {
            return Err(format!(
                "{path}:{}: expected 4 tab-separated fields, got {}",
                n + 2,
                fields.len()
            ));
        }
        let min_len = fields[2]
            .parse()
            .map_err(|e| format!("{path}:{}: bad min_len: {e}", n + 2))?;
        let seed_len = match fields[3] {
            "-" => None,
            s => Some(
                s.parse()
                    .map_err(|e| format!("{path}:{}: bad seed_len: {e}", n + 2))?,
            ),
        };
        entries.push(HandleEntry {
            name: fields[0].to_string(),
            path: fields[1].to_string(),
            min_len,
            seed_len,
        });
    }
    Ok(entries)
}

fn entry_config(entry: &HandleEntry) -> Result<GpumemConfig, String> {
    let mut builder = GpumemConfig::builder(entry.min_len)
        .threads_per_block(128)
        .blocks_per_tile(16);
    if let Some(seed_len) = entry.seed_len {
        builder = builder.seed_len(seed_len);
    }
    builder.build().map_err(|e| format!("{}: {e}", entry.name))
}

/// Load every handle-file entry into `registry`, returning the handles
/// in file order.
fn load_registry(
    registry: &Registry,
    entries: &[HandleEntry],
) -> Result<Vec<gpumem::RefHandle>, String> {
    entries
        .iter()
        .map(|entry| {
            let reference = Arc::new(load_first_record(&entry.path)?);
            registry
                .add(&entry.name, reference, entry_config(entry)?)
                .map_err(|e| format!("{}: {e}", entry.name))
        })
        .collect()
}

fn registry_main(argv: &[String]) -> Result<(), String> {
    let (cmd, rest) = argv
        .split_first()
        .ok_or("registry: expected add, list, or evict-stats")?;
    match cmd.as_str() {
        "add" => registry_add(rest),
        "list" => registry_list(rest),
        "evict-stats" => registry_evict_stats(rest),
        other => Err(format!(
            "registry: unknown subcommand {other} (expected add, list, or evict-stats)"
        )),
    }
}

fn registry_add(argv: &[String]) -> Result<(), String> {
    let mut positional = Vec::new();
    let mut min_len = 20u32;
    let mut seed_len = None;
    let mut args = argv.iter().cloned();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--min-len" => {
                min_len = args
                    .next()
                    .ok_or("missing value for --min-len")?
                    .parse()
                    .map_err(|e| format!("bad --min-len: {e}"))?
            }
            "--seed-len" => {
                seed_len = Some(
                    args.next()
                        .ok_or("missing value for --seed-len")?
                        .parse()
                        .map_err(|e| format!("bad --seed-len: {e}"))?,
                )
            }
            other if other.starts_with("--") => {
                return Err(format!("registry add: unknown option {other}"))
            }
            other => positional.push(other.to_string()),
        }
    }
    let [file, name, fasta] = positional.as_slice() else {
        return Err(format!(
            "registry add: expected <handles.tsv> <name> <reference.fa>, got {} positionals",
            positional.len()
        ));
    };
    if name.contains('\t') {
        return Err("registry add: name must not contain tabs".into());
    }
    let entry = HandleEntry {
        name: name.clone(),
        path: fasta.clone(),
        min_len,
        seed_len,
    };
    // Validate before writing: the FASTA must load and the session must
    // construct against the default device.
    let reference = Arc::new(load_first_record(fasta)?);
    let ref_len = reference.len();
    let probe = Registry::new(DeviceSpec::tesla_k20c());
    probe
        .add(name, reference, entry_config(&entry)?)
        .map_err(|e| format!("{name}: {e}"))?;
    let rows = probe.list()[0].rows;

    let mut existing = match std::fs::metadata(file) {
        Ok(_) => read_handle_file(file)?,
        Err(_) => Vec::new(),
    };
    if existing.iter().any(|e| e.name == *name) {
        return Err(format!("registry add: name {name} already registered"));
    }
    existing.push(entry);
    let mut body = String::from(HANDLE_HEADER);
    body.push('\n');
    for e in &existing {
        body.push_str(&format!(
            "{}\t{}\t{}\t{}\n",
            e.name,
            e.path,
            e.min_len,
            e.seed_len.map_or("-".to_string(), |s| s.to_string())
        ));
    }
    std::fs::write(file, body).map_err(|e| format!("{file}: {e}"))?;
    println!("registered {name}: {ref_len} bp, {rows} tile rows");
    Ok(())
}

fn registry_list(argv: &[String]) -> Result<(), String> {
    let [file] = argv else {
        return Err("registry list: expected <handles.tsv>".into());
    };
    let entries = read_handle_file(file)?;
    let registry = Registry::new(DeviceSpec::tesla_k20c());
    load_registry(&registry, &entries)?;
    println!(
        "{:<6} {:<20} {:>12} {:>8} {:>10} {:>14}",
        "handle", "name", "ref_bp", "rows", "resident", "bytes"
    );
    for info in registry.list() {
        println!(
            "{:<6} {:<20} {:>12} {:>8} {:>10} {:>14}",
            info.handle.id(),
            info.name,
            info.ref_len,
            info.rows,
            info.resident_rows,
            info.resident_bytes
        );
    }
    Ok(())
}

fn registry_evict_stats(argv: &[String]) -> Result<(), String> {
    let mut file = None;
    let mut budget: Option<u64> = None;
    let mut rounds = 2usize;
    let mut args = argv.iter().cloned();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--budget" => {
                budget = Some(
                    args.next()
                        .ok_or("missing value for --budget")?
                        .parse()
                        .map_err(|e| format!("bad --budget: {e}"))?,
                )
            }
            "--rounds" => {
                rounds = args
                    .next()
                    .ok_or("missing value for --rounds")?
                    .parse()
                    .map_err(|e| format!("bad --rounds: {e}"))?
            }
            other if other.starts_with("--") => {
                return Err(format!("registry evict-stats: unknown option {other}"))
            }
            other => {
                if file.replace(other.to_string()).is_some() {
                    return Err("registry evict-stats: expected one <handles.tsv>".into());
                }
            }
        }
    }
    let file = file.ok_or("registry evict-stats: expected <handles.tsv>")?;
    let entries = read_handle_file(&file)?;
    let registry = match budget {
        Some(bytes) => Registry::with_budget(DeviceSpec::tesla_k20c(), bytes),
        None => Registry::new(DeviceSpec::tesla_k20c()),
    };
    let handles = load_registry(&registry, &entries)?;
    // Warm every reference `rounds` times in file order: under a budget
    // smaller than the combined index footprint, each warm of a cold
    // reference evicts the coldest resident one — the churn whose
    // counters this command reports.
    let device = Device::new(registry.spec().clone());
    for _ in 0..rounds {
        for &handle in &handles {
            let session = registry
                .session(handle)
                .expect("loaded handle stays resolvable");
            session.warm(&device);
            registry.touch(handle);
        }
    }
    println!("{}", registry.stats().to_json());
    Ok(())
}

fn metrics_main(argv: &[String]) -> Result<(), String> {
    let (cmd, rest) = argv.split_first().ok_or("metrics: expected export")?;
    match cmd.as_str() {
        "export" => metrics_export(rest),
        other => Err(format!(
            "metrics: unknown subcommand {other} (expected export)"
        )),
    }
}

/// Run a query batch through a registry-hosted engine and print the
/// unified telemetry exposition — every `MetricsSnapshot`,
/// `LaunchStats`, `RegistryStats`, and shard counter, in Prometheus
/// text format or the registry JSON shape.
fn metrics_export(argv: &[String]) -> Result<(), String> {
    let mut format = "prometheus".to_string();
    let mut min_len = 20u32;
    let mut seed_len: Option<usize> = None;
    let mut query_threads = 1usize;
    let mut shards = 1usize;
    let mut journal: Option<String> = None;
    let mut positional = Vec::new();
    let mut args = argv.iter().cloned();
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match arg.as_str() {
            "--format" => format = value("--format")?,
            "--min-len" => {
                min_len = value("--min-len")?
                    .parse()
                    .map_err(|e| format!("bad --min-len: {e}"))?
            }
            "--seed-len" => {
                seed_len = Some(
                    value("--seed-len")?
                        .parse()
                        .map_err(|e| format!("bad --seed-len: {e}"))?,
                )
            }
            "--query-threads" => {
                query_threads = value("--query-threads")?
                    .parse()
                    .map_err(|e| format!("bad --query-threads: {e}"))?;
                if query_threads == 0 {
                    return Err("bad --query-threads: must be positive".into());
                }
            }
            "--shards" => {
                shards = value("--shards")?
                    .parse()
                    .map_err(|e| format!("bad --shards: {e}"))?;
                if shards == 0 {
                    return Err("bad --shards: must be positive".into());
                }
            }
            "--journal" => journal = Some(value("--journal")?),
            other if other.starts_with("--") => {
                return Err(format!("metrics export: unknown option {other}"))
            }
            other => positional.push(other.to_string()),
        }
    }
    if format != "prometheus" && format != "json" {
        return Err(format!(
            "bad --format {format}: expected prometheus or json"
        ));
    }
    let [ref_path, query_path] = positional.as_slice() else {
        return Err(format!(
            "metrics export: expected <reference.fa> <query.fa>, got {} positionals",
            positional.len()
        ));
    };
    let reference = load_first_record(ref_path)?;
    let queries = SeqSet::from_records(&load_records(query_path)?);
    let mut cfg = GpumemConfig::builder(min_len)
        .threads_per_block(128)
        .blocks_per_tile(16);
    if let Some(seed_len) = seed_len {
        cfg = cfg.seed_len(seed_len);
    }
    let config = cfg.build().map_err(|e| e.to_string())?;
    let registry = Arc::new(Registry::new(DeviceSpec::tesla_k20c()));
    let sink: Option<Arc<JsonlEventSink>> = match &journal {
        Some(path) => Some(Arc::new(
            JsonlEventSink::create(path).map_err(|e| format!("{path}: {e}"))?,
        )),
        None => None,
    };
    if let Some(sink) = &sink {
        registry.set_event_sink(Some(Arc::clone(sink) as Arc<dyn EventSink>));
    }
    let mut builder = Engine::builder(reference)
        .config(config)
        .registry(Arc::clone(&registry))
        .name("cli")
        .threads(query_threads);
    if let Some(sink) = &sink {
        builder = builder.event_sink(Arc::clone(sink) as Arc<dyn EventSink>);
    }
    let engine = builder.build().map_err(|e| e.to_string())?;
    let options = RunOptions {
        shards,
        ..RunOptions::default()
    };
    collect_batch(&queries, batch_results(&engine, &queries, &options))?;
    let snapshot = engine.metrics();
    match format.as_str() {
        "prometheus" => print!("{}", telemetry::render_prometheus(&snapshot)),
        _ => println!("{}", telemetry::render_json(&snapshot)),
    }
    Ok(())
}

/// The history fields where smaller is better (wall seconds).
const HISTORY_LOWER_BETTER: [&str; 2] = ["wall_s", "match_wall_s"];
/// The history fields where larger is better (throughput, speedup
/// ratios).
const HISTORY_HIGHER_BETTER: [&str; 4] = [
    "qps_batch",
    "seedmode_l300_modeled_ratio",
    "skewed_modeled_ratio",
    "sharded_modeled_ratio",
];

/// Compare the newest trajectory entry against the best earlier entry
/// per metric; fail on any regression beyond `max_regress`.
fn bench_check(history: &str, max_regress: f64) -> Result<(), String> {
    let body = match std::fs::read_to_string(history) {
        Ok(body) => body,
        Err(_) => {
            println!("bench-check: no history at {history}; nothing to check");
            return Ok(());
        }
    };
    let entries: Vec<serde::json::Value> = body
        .lines()
        .enumerate()
        .filter(|(_, line)| !line.trim().is_empty())
        .map(|(n, line)| serde::json::parse(line).map_err(|e| format!("{history}:{}: {e}", n + 1)))
        .collect::<Result<_, _>>()?;
    if entries.len() < 2 {
        println!(
            "bench-check: {} history entr{} at {history}; need 2+ to compare",
            entries.len(),
            if entries.len() == 1 { "y" } else { "ies" }
        );
        return Ok(());
    }
    let (last, prior) = entries.split_last().expect("len >= 2");
    let field = |entry: &serde::json::Value, name: &str| {
        entry.get(name).and_then(serde::json::Value::as_f64)
    };
    let mut failures = Vec::new();
    for name in HISTORY_LOWER_BETTER {
        let Some(current) = field(last, name) else {
            continue;
        };
        let best = prior
            .iter()
            .filter_map(|e| field(e, name))
            .fold(f64::INFINITY, f64::min);
        if !best.is_finite() {
            continue;
        }
        if current > best * (1.0 + max_regress) {
            failures.push(format!(
                "{name}: {current:.4} vs best {best:.4} (regressed > {:.0}%)",
                max_regress * 100.0
            ));
        } else {
            println!("ok {name}: {current:.4} (best {best:.4})");
        }
    }
    for name in HISTORY_HIGHER_BETTER {
        let Some(current) = field(last, name) else {
            continue;
        };
        let best = prior
            .iter()
            .filter_map(|e| field(e, name))
            .fold(f64::NEG_INFINITY, f64::max);
        if !best.is_finite() {
            continue;
        }
        if current < best * (1.0 - max_regress) {
            failures.push(format!(
                "{name}: {current:.4} vs best {best:.4} (regressed > {:.0}%)",
                max_regress * 100.0
            ));
        } else {
            println!("ok {name}: {current:.4} (best {best:.4})");
        }
    }
    if failures.is_empty() {
        println!(
            "bench-check: latest entry within {:.0}% of the recorded trajectory",
            max_regress * 100.0
        );
        Ok(())
    } else {
        Err(format!(
            "bench trajectory regression: {}",
            failures.join("; ")
        ))
    }
}

fn bench_info_main(argv: &[String]) -> Result<(), String> {
    let mut min_len = 20u32;
    let mut check = false;
    let mut max_regress = 0.20f64;
    let mut history = "results/bench_history.jsonl".to_string();
    let mut args = argv.iter().cloned();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--min-len" => {
                min_len = args
                    .next()
                    .ok_or("missing value for --min-len")?
                    .parse()
                    .map_err(|e| format!("bad --min-len: {e}"))?
            }
            "--check" => check = true,
            "--max-regress" => {
                max_regress = args
                    .next()
                    .ok_or("missing value for --max-regress")?
                    .parse()
                    .map_err(|e| format!("bad --max-regress: {e}"))?
            }
            "--history" => {
                history = args.next().ok_or("missing value for --history")?;
            }
            other => return Err(format!("bench-info: unknown option {other}")),
        }
    }
    if check {
        return bench_check(&history, max_regress);
    }
    let config = GpumemConfig::builder(min_len)
        .threads_per_block(128)
        .blocks_per_tile(16)
        .build()
        .map_err(|e| e.to_string())?;
    println!(
        "{:<12} {:>4} {:>9} {:>5} {:>10} {:>14}",
        "device", "SMs", "cores/SM", "warp", "clock_mhz", "mem_bytes"
    );
    for spec in [
        DeviceSpec::tesla_k20c(),
        DeviceSpec::tesla_k40(),
        DeviceSpec::test_tiny(),
    ] {
        println!(
            "{:<12} {:>4} {:>9} {:>5} {:>10.0} {:>14}",
            spec.name,
            spec.sm_count,
            spec.cores_per_sm,
            spec.warp_size,
            spec.clock_hz / 1e6,
            spec.global_mem_bytes
        );
    }
    println!(
        "\nconfig: min_len {} seed_len {} step {} -> tile_len {} ({} threads/block x {} blocks/tile)",
        config.min_len,
        config.seed_len,
        config.step,
        config.tile_len(),
        config.threads_per_block,
        config.blocks_per_tile
    );
    println!(
        "tile-row working set: ~{} bytes",
        gpumem::core::pipeline::device_memory_estimate(&config)
    );
    Ok(())
}

fn run_main(argv: &[String]) -> ExitCode {
    let opts = match parse_args(argv) {
        Ok(opts) => opts,
        Err(msg) => {
            if msg != "help" {
                eprintln!("error: {msg}\n");
            }
            usage();
            return if msg == "help" {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(2)
            };
        }
    };

    let run = || -> Result<(), String> {
        let reference = load_first_record(&opts.reference)?;
        let queries = SeqSet::from_records(&load_records(&opts.query)?);

        // Under --sanitize every simulated kernel launch between here
        // and finish() is hazard-checked (only the gpumem tool launches
        // kernels; for CPU baselines the report is trivially clean).
        let session = opts.sanitize.then(gpumem::sim::sanitizer::Session::start);
        let mut by_record = run_finder(&opts, &reference, &queries)?;
        if let Some(session) = session {
            let report = session.finish();
            eprint!("{report}");
            if !report.is_clean() {
                return Err(format!(
                    "sanitizer detected {} hazard(s)",
                    report.hazards.len() as u64 + report.suppressed
                ));
            }
        }

        // Variant filtering, per query record (forward-strand
        // coordinates only; reverse hits are filtered against the
        // reverse complement implicitly via their reference interval).
        if opts.mum || opts.rare.is_some() {
            let max_occ = if opts.mum { 1 } else { opts.rare.unwrap() };
            for (i, record) in by_record.iter_mut().enumerate() {
                let filter = VariantFilter::new(&reference, &queries.record_seq(i));
                let mems: Vec<Mem> = record.hits.iter().map(|h| h.mem).collect();
                let keep: std::collections::HashSet<Mem> =
                    filter.rare_matches(&mems, max_occ).into_iter().collect();
                record.hits.retain(|h| keep.contains(&h.mem));
            }
        }

        if opts.stats {
            let total: usize = by_record.iter().map(|r| r.hits.len()).sum();
            eprintln!("{} matches (L >= {})", total, opts.min_len);
        }
        let name_column = by_record.len() > 1;
        let mut out = String::new();
        for record in &by_record {
            for hit in &record.hits {
                let strand = match hit.strand {
                    Strand::Forward => '+',
                    Strand::Reverse => '-',
                };
                out.push_str(&format!(
                    "{:>10} {:>10} {:>8} {}",
                    hit.mem.r + 1,
                    hit.mem.q + 1,
                    hit.mem.len,
                    strand
                ));
                if name_column {
                    out.push(' ');
                    out.push_str(&record.name);
                }
                out.push('\n');
            }
        }
        print!("{out}");
        Ok(())
    };
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
