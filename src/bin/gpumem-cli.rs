//! Command-line MEM extraction, MUMmer-style.
//!
//! ```text
//! gpumem-cli [OPTIONS] <reference.fa> <query.fa>
//!
//! OPTIONS:
//!   --tool <gpumem|mummer|essamem|sparsemem|slamem>   finder (default gpumem)
//!   --min-len <L>        minimum MEM length (default 20)
//!   --seed-len <ls>      GPUMEM seed length (default min(13, L))
//!   --seed-mode <m>      GPUMEM seed sampling: `ref` (reference-only,
//!                        Eq. 1 sparsification, default) or
//!                        `dual[:k1,k2]` (copMEM-style dual-genome
//!                        sampling with co-prime steps; omitting k1,k2
//!                        picks the largest valid pair automatically)
//!   --sparseness <K>     sparse-SA sparseness for essamem/sparsemem (default 4)
//!   --threads <t>        CPU finder threads (default 1)
//!   --query-threads <n>  GPUMEM query workers for multi-record query
//!                        FASTA (default 1)
//!   --schedule-policy <inorder|mass>
//!                        GPUMEM tile launch order: grid order
//!                        (default) or heaviest sampled seed-occurrence
//!                        mass first (LPT-style straggler avoidance)
//!   --work-stealing      GPUMEM persistent-block work stealing: the
//!                        generate/expand steps drain a per-block chunk
//!                        queue instead of the static split
//!   --query-staging      GPUMEM shared-memory query staging: blocks
//!                        park their query window in shared memory
//!   --both-strands       also match the reverse complement of the query
//!   --mum                report only maximal unique matches
//!   --rare <t>           report matches occurring ≤ t times in each sequence
//!   --stats              print run statistics to stderr
//!   --sanitize           run kernels under the shadow-memory hazard
//!                        sanitizer; report to stderr, fail on hazards
//!   --trace <path>       write a Chrome Trace Event JSON of the run
//!                        (open in Perfetto / chrome://tracing);
//!                        gpumem only
//!   --metrics <path>     write the serving engine's metrics snapshot
//!                        (latency histogram, index-cache, workers) as
//!                        JSON; gpumem only
//!   --profile            print a per-stage/per-phase profile table to
//!                        stderr; gpumem only
//! ```
//!
//! The query FASTA may hold many records; each is matched independently
//! (GPUMEM serves them all from one cached reference session, in
//! parallel across `--query-threads` workers). Output: one
//! `ref_pos  query_pos  length  strand` line per match, 1-based
//! coordinates as in `mummer -maxmatch`, grouped by query record in
//! input order; with more than one query record, each line gains the
//! record name as a final column.

use std::fs::File;
use std::io::BufReader;
use std::process::ExitCode;

use gpumem::baselines::{
    find_mems_both_strands, EssaMem, MemFinder, Mummer, SlaMem, SparseMem, VariantFilter,
};
use gpumem::index::{check_dual_steps, max_coprime_steps};
use gpumem::seq::{
    read_fasta, AmbigPolicy, FastaRecord, Mem, PackedSeq, SeqSet, Strand, StrandMem,
};
use gpumem::sim::{DeviceSpec, LaunchStats};
use gpumem::{Engine, GpumemConfig, GpumemResult, RunError, SchedulePolicy, SeedMode, Trace};

struct Options {
    tool: String,
    min_len: u32,
    seed_len: Option<usize>,
    seed_mode: String,
    sparseness: usize,
    threads: usize,
    query_threads: usize,
    schedule_policy: SchedulePolicy,
    work_stealing: bool,
    query_staging: bool,
    both_strands: bool,
    mum: bool,
    rare: Option<usize>,
    stats: bool,
    sanitize: bool,
    trace: Option<String>,
    metrics: Option<String>,
    profile: bool,
    reference: String,
    query: String,
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let mut opts = Options {
        tool: "gpumem".into(),
        min_len: 20,
        seed_len: None,
        seed_mode: "ref".into(),
        sparseness: 4,
        threads: 1,
        query_threads: 1,
        schedule_policy: SchedulePolicy::InOrder,
        work_stealing: false,
        query_staging: false,
        both_strands: false,
        mum: false,
        rare: None,
        stats: false,
        sanitize: false,
        trace: None,
        metrics: None,
        profile: false,
        reference: String::new(),
        query: String::new(),
    };
    let mut positional = Vec::new();
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match arg.as_str() {
            "--tool" => opts.tool = value("--tool")?,
            "--min-len" => {
                opts.min_len = value("--min-len")?
                    .parse()
                    .map_err(|e| format!("bad --min-len: {e}"))?
            }
            "--seed-len" => {
                opts.seed_len = Some(
                    value("--seed-len")?
                        .parse()
                        .map_err(|e| format!("bad --seed-len: {e}"))?,
                )
            }
            "--seed-mode" => opts.seed_mode = value("--seed-mode")?,
            "--sparseness" => {
                opts.sparseness = value("--sparseness")?
                    .parse()
                    .map_err(|e| format!("bad --sparseness: {e}"))?
            }
            "--threads" => {
                opts.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("bad --threads: {e}"))?
            }
            "--query-threads" => {
                opts.query_threads = value("--query-threads")?
                    .parse()
                    .map_err(|e| format!("bad --query-threads: {e}"))?;
                if opts.query_threads == 0 {
                    return Err("bad --query-threads: must be positive".into());
                }
            }
            "--schedule-policy" => {
                opts.schedule_policy = match value("--schedule-policy")?.as_str() {
                    "inorder" => SchedulePolicy::InOrder,
                    "mass" => SchedulePolicy::MassDescending,
                    other => {
                        return Err(format!(
                            "bad --schedule-policy {other}: expected inorder or mass"
                        ))
                    }
                }
            }
            "--work-stealing" => opts.work_stealing = true,
            "--query-staging" => opts.query_staging = true,
            "--both-strands" => opts.both_strands = true,
            "--mum" => opts.mum = true,
            "--rare" => {
                opts.rare = Some(
                    value("--rare")?
                        .parse()
                        .map_err(|e| format!("bad --rare: {e}"))?,
                )
            }
            "--stats" => opts.stats = true,
            "--sanitize" => opts.sanitize = true,
            "--trace" => opts.trace = Some(value("--trace")?),
            "--metrics" => opts.metrics = Some(value("--metrics")?),
            "--profile" => opts.profile = true,
            "--help" | "-h" => return Err("help".into()),
            other if other.starts_with("--") => return Err(format!("unknown option {other}")),
            other => positional.push(other.to_string()),
        }
    }
    match positional.len() {
        2 => {
            opts.reference = positional.remove(0);
            opts.query = positional.remove(0);
            Ok(opts)
        }
        n => Err(format!(
            "expected <reference.fa> <query.fa>, got {n} positionals"
        )),
    }
}

/// Resolve `--seed-mode ref|dual[:k1,k2]`. The auto `dual` form picks
/// the largest valid co-prime pair for `(L, ℓs)`; explicit pairs are
/// validated here so the structured [`gpumem::index::IndexError`]
/// message (non-co-prime, product over the coverage bound) reaches the
/// user before any index work starts.
fn parse_seed_mode(spec: &str, min_len: u32, seed_len: usize) -> Result<SeedMode, String> {
    if spec == "ref" {
        return Ok(SeedMode::RefOnly);
    }
    let rest = spec
        .strip_prefix("dual")
        .ok_or_else(|| format!("bad --seed-mode {spec}: expected ref or dual[:k1,k2]"))?;
    let (k1, k2) = if rest.is_empty() {
        max_coprime_steps(min_len, seed_len).map_err(|e| format!("bad --seed-mode: {e}"))?
    } else {
        let body = rest
            .strip_prefix(':')
            .and_then(|body| body.split_once(','))
            .ok_or_else(|| format!("bad --seed-mode {spec}: expected dual:<k1>,<k2>"))?;
        let k1 = body
            .0
            .parse()
            .map_err(|e| format!("bad --seed-mode k1: {e}"))?;
        let k2 = body
            .1
            .parse()
            .map_err(|e| format!("bad --seed-mode k2: {e}"))?;
        check_dual_steps(k1, k2, min_len, seed_len).map_err(|e| format!("bad --seed-mode: {e}"))?;
        (k1, k2)
    };
    Ok(SeedMode::DualSampled { k1, k2 })
}

fn load_records(path: &str) -> Result<Vec<FastaRecord>, String> {
    let file = File::open(path).map_err(|e| format!("{path}: {e}"))?;
    let records = read_fasta(BufReader::new(file), AmbigPolicy::Randomize(0))
        .map_err(|e| format!("{path}: {e}"))?;
    if records.is_empty() {
        return Err(format!("{path}: no FASTA records"));
    }
    Ok(records)
}

fn load_first_record(path: &str) -> Result<PackedSeq, String> {
    Ok(load_records(path)?.remove(0).seq)
}

/// One query record's matches, in that record's coordinates.
struct RecordHits {
    name: String,
    hits: Vec<StrandMem>,
}

/// Turn a batch result into per-record results, surfacing the first
/// failed query as the CLI error.
fn collect_batch(
    queries: &SeqSet,
    results: Vec<Result<GpumemResult, RunError>>,
) -> Result<Vec<GpumemResult>, String> {
    results
        .into_iter()
        .zip(&queries.records)
        .map(|(result, span)| result.map_err(|e| format!("query {}: {e}", span.name)))
        .collect()
}

fn run_gpumem(
    opts: &Options,
    reference: &PackedSeq,
    queries: &SeqSet,
) -> Result<Vec<RecordHits>, String> {
    // Mirror the builder's seed-length default so `--seed-mode dual`
    // derives its co-prime pair from the length the index will use.
    let seed_len = opts
        .seed_len
        .unwrap_or_else(|| 13usize.min(opts.min_len as usize));
    let seed_mode = parse_seed_mode(&opts.seed_mode, opts.min_len, seed_len)?;
    let mut builder = GpumemConfig::builder(opts.min_len)
        .threads_per_block(128)
        .blocks_per_tile(16)
        .seed_mode(seed_mode)
        .schedule_policy(opts.schedule_policy)
        .work_stealing(opts.work_stealing)
        .query_staging(opts.query_staging);
    if let Some(seed_len) = opts.seed_len {
        builder = builder.seed_len(seed_len);
    }
    let config = builder.build().map_err(|e| e.to_string())?;
    let engine = Engine::with_spec(
        reference.clone(),
        config,
        DeviceSpec::tesla_k20c(),
        opts.query_threads,
    )
    .map_err(|e| e.to_string())?;

    // Tracing serializes queries onto worker 0 so each gets its own
    // span tree; the merged trace lays the queries out one per track.
    let tracing = opts.trace.is_some() || opts.profile;
    let mut traces = Vec::new();
    let forward = if tracing {
        let mut results = Vec::with_capacity(queries.records.len());
        for (i, span) in queries.records.iter().enumerate() {
            let (result, trace) = engine
                .run_traced(&queries.record_seq(i))
                .map_err(|e| format!("query {}: {e}", span.name))?;
            results.push(result);
            traces.push(trace);
        }
        results
    } else {
        collect_batch(queries, engine.run_batch(queries))?
    };
    let reverse = if opts.both_strands {
        // Reverse-complement each record independently; coordinates map
        // back per record.
        let rc_records: Vec<FastaRecord> = queries
            .records
            .iter()
            .enumerate()
            .map(|(i, span)| FastaRecord {
                header: span.name.clone(),
                seq: queries.record_seq(i).reverse_complement(),
            })
            .collect();
        let rc_set = SeqSet::from_records(&rc_records);
        Some(collect_batch(queries, engine.run_batch(&rc_set))?)
    } else {
        None
    };

    if opts.stats {
        let tiles: usize = forward.iter().map(|r| r.stats.rows * r.stats.cols).sum();
        let index: LaunchStats = forward.iter().map(|r| r.stats.index.clone()).sum();
        let matching: LaunchStats = forward.iter().map(|r| r.stats.matching.clone()).sum();
        eprintln!(
            "gpumem: {} tiles, modeled index {:.3} ms + match {:.3} ms, warp efficiency {:.2}",
            tiles,
            index.modeled_secs() * 1e3,
            matching.modeled_secs() * 1e3,
            matching.warp_efficiency(32)
        );
    }

    if tracing {
        let trace = Trace::merge(traces);
        if let Some(path) = &opts.trace {
            std::fs::write(path, trace.to_chrome_json()).map_err(|e| format!("{path}: {e}"))?;
        }
        if opts.profile {
            eprint!("{}", trace.profile_report());
        }
    }
    if let Some(path) = &opts.metrics {
        std::fs::write(path, engine.metrics().to_json()).map_err(|e| format!("{path}: {e}"))?;
    }

    let mut out = Vec::with_capacity(queries.records.len());
    for (i, span) in queries.records.iter().enumerate() {
        let mut hits: Vec<StrandMem> = forward[i]
            .mems
            .iter()
            .map(|&mem| StrandMem {
                mem,
                strand: Strand::Forward,
            })
            .collect();
        if let Some(reverse) = &reverse {
            hits.extend(reverse[i].mems.iter().map(|&mem| StrandMem {
                mem: gpumem::seq::map_reverse_mem(mem, span.len),
                strand: Strand::Reverse,
            }));
        }
        hits.sort_unstable();
        out.push(RecordHits {
            name: span.name.clone(),
            hits,
        });
    }
    Ok(out)
}

fn run_finder(
    opts: &Options,
    reference: &PackedSeq,
    queries: &SeqSet,
) -> Result<Vec<RecordHits>, String> {
    if opts.tool != "gpumem" && (opts.trace.is_some() || opts.metrics.is_some() || opts.profile) {
        return Err(format!(
            "--trace/--metrics/--profile require --tool gpumem (got {})",
            opts.tool
        ));
    }
    let finder: Box<dyn MemFinder> = match opts.tool.as_str() {
        "mummer" => Box::new(Mummer::build(reference)),
        "essamem" => Box::new(EssaMem::build(reference, opts.sparseness)),
        "sparsemem" => Box::new(SparseMem::build(reference, opts.sparseness)),
        "slamem" => Box::new(SlaMem::build(reference)),
        // GPUMEM path handled separately (simulated device, batch
        // engine).
        "gpumem" => return run_gpumem(opts, reference, queries),
        other => return Err(format!("unknown tool {other}")),
    };
    let mut out = Vec::with_capacity(queries.records.len());
    for (i, span) in queries.records.iter().enumerate() {
        let query = queries.record_seq(i);
        let hits = if opts.both_strands {
            find_mems_both_strands(finder.as_ref(), &query, opts.min_len, opts.threads)
        } else {
            gpumem::baselines::find_mems_parallel(
                finder.as_ref(),
                &query,
                opts.min_len,
                opts.threads,
            )
            .into_iter()
            .map(|mem| StrandMem {
                mem,
                strand: Strand::Forward,
            })
            .collect()
        };
        out.push(RecordHits {
            name: span.name.clone(),
            hits,
        });
    }
    Ok(out)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(msg) => {
            if msg != "help" {
                eprintln!("error: {msg}\n");
            }
            eprintln!("usage: gpumem-cli [--tool T] [--min-len L] [--seed-len ls] [--seed-mode ref|dual[:k1,k2]] [--sparseness K] [--threads t] [--query-threads n] [--schedule-policy inorder|mass] [--work-stealing] [--query-staging] [--both-strands] [--mum] [--rare t] [--stats] [--sanitize] [--trace out.json] [--metrics out.json] [--profile] <reference.fa> <query.fa>");
            return if msg == "help" {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(2)
            };
        }
    };

    let run = || -> Result<(), String> {
        let reference = load_first_record(&opts.reference)?;
        let queries = SeqSet::from_records(&load_records(&opts.query)?);

        // Under --sanitize every simulated kernel launch between here
        // and finish() is hazard-checked (only the gpumem tool launches
        // kernels; for CPU baselines the report is trivially clean).
        let session = opts.sanitize.then(gpumem::sim::sanitizer::Session::start);
        let mut by_record = run_finder(&opts, &reference, &queries)?;
        if let Some(session) = session {
            let report = session.finish();
            eprint!("{report}");
            if !report.is_clean() {
                return Err(format!(
                    "sanitizer detected {} hazard(s)",
                    report.hazards.len() as u64 + report.suppressed
                ));
            }
        }

        // Variant filtering, per query record (forward-strand
        // coordinates only; reverse hits are filtered against the
        // reverse complement implicitly via their reference interval).
        if opts.mum || opts.rare.is_some() {
            let max_occ = if opts.mum { 1 } else { opts.rare.unwrap() };
            for (i, record) in by_record.iter_mut().enumerate() {
                let filter = VariantFilter::new(&reference, &queries.record_seq(i));
                let mems: Vec<Mem> = record.hits.iter().map(|h| h.mem).collect();
                let keep: std::collections::HashSet<Mem> =
                    filter.rare_matches(&mems, max_occ).into_iter().collect();
                record.hits.retain(|h| keep.contains(&h.mem));
            }
        }

        if opts.stats {
            let total: usize = by_record.iter().map(|r| r.hits.len()).sum();
            eprintln!("{} matches (L >= {})", total, opts.min_len);
        }
        let name_column = by_record.len() > 1;
        let mut out = String::new();
        for record in &by_record {
            for hit in &record.hits {
                let strand = match hit.strand {
                    Strand::Forward => '+',
                    Strand::Reverse => '-',
                };
                out.push_str(&format!(
                    "{:>10} {:>10} {:>8} {}",
                    hit.mem.r + 1,
                    hit.mem.q + 1,
                    hit.mem.len,
                    strand
                ));
                if name_column {
                    out.push(' ');
                    out.push_str(&record.name);
                }
                out.push('\n');
            }
        }
        print!("{out}");
        Ok(())
    };
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
