//! # GPUMEM
//!
//! A reproduction of *"Extracting Maximal Exact Matches on GPU"*
//! (Abu-Doleh, Kaya, Abouelhoda, Çatalyürek — IEEE IPDPSW 2014) as a Rust
//! workspace. This facade crate re-exports the public APIs of every
//! workspace crate so downstream users can depend on a single crate:
//!
//! * [`seq`] — 2-bit packed DNA sequences, FASTA IO, synthetic genome
//!   generation ([`gpumem_seq`]).
//! * [`sim`] — the SIMT execution-model simulator standing in for the
//!   paper's Tesla K20c ([`gpu_sim`]).
//! * [`index`] — the lightweight `ptrs`/`locs` seed index
//!   ([`gpumem_index`]).
//! * [`core`] — the GPUMEM pipeline itself ([`gpumem_core`]).
//! * [`baselines`] — sparseMEM / essaMEM / MUMmer / slaMEM CPU finders
//!   ([`gpumem_baselines`]).
//!
//! ## Quickstart
//!
//! ```
//! use gpumem::core::{Gpumem, GpumemConfig};
//! use gpumem::seq::PackedSeq;
//!
//! let reference = PackedSeq::from_ascii(b"ACGTACGTACGTGGGGACGTACGTACGT").unwrap();
//! let query     = PackedSeq::from_ascii(b"TTTTACGTACGTACGTCCCC").unwrap();
//! let config = GpumemConfig::builder(8).seed_len(4).build().unwrap();
//! let mems = Gpumem::new(config).run(&reference, &query).unwrap().mems;
//! assert!(mems.iter().all(|m| m.len >= 8));
//! ```
//!
//! ## Serving many queries
//!
//! For query streams against one reference, the serving engine caches
//! the per-row partial indexes in a session and runs batches in
//! parallel — everything needed is re-exported at the crate root:
//!
//! ```
//! use gpumem::{Engine, GpumemConfig, RunError};
//! use gpumem::seq::{FastaRecord, PackedSeq, SeqSet};
//!
//! let reference = PackedSeq::from_ascii(b"ACGTACGTACGTGGGGACGTACGTACGT").unwrap();
//! let queries = SeqSet::from_records(&[
//!     FastaRecord { header: "q0".into(), seq: "TTTTACGTACGTACGTCCCC".parse().unwrap() },
//!     FastaRecord { header: "q1".into(), seq: "GGGGACGTACGTAAAA".parse().unwrap() },
//! ]);
//! let config = GpumemConfig::builder(8).seed_len(4).build().unwrap();
//! let engine = Engine::builder(reference).config(config).build()?;
//! for result in engine.run_batch(&queries) {
//!     assert!(result?.mems.iter().all(|m| m.len >= 8));
//! }
//! # Ok::<(), RunError>(())
//! ```
//!
//! ## Hosting many references
//!
//! A [`Registry`] hosts many references behind stable [`RefHandle`]s
//! under one byte budget, evicting the coldest resident indexes when
//! the budget is exceeded (pinned sessions — e.g. any session backing a
//! live [`Engine`] — are never evicted):
//!
//! ```
//! use std::sync::Arc;
//! use gpumem::{Engine, GpumemConfig, Registry, RunError};
//! use gpumem::seq::PackedSeq;
//! use gpumem::sim::DeviceSpec;
//!
//! let registry = Arc::new(Registry::with_budget(
//!     DeviceSpec::test_tiny(),
//!     64 << 20, // 64 MiB across all hosted references
//! ));
//! let reference = PackedSeq::from_ascii(b"ACGTACGTACGTGGGGACGTACGTACGT").unwrap();
//! let config = GpumemConfig::builder(8).seed_len(4).build().unwrap();
//! let engine = Engine::builder(reference)
//!     .config(config)
//!     .registry(Arc::clone(&registry))
//!     .name("chr1")
//!     .build()?;
//! let query = PackedSeq::from_ascii(b"TTTTACGTACGTACGTCCCC").unwrap();
//! engine.run(&query)?;
//! assert_eq!(engine.metrics().registry.references, 1);
//! # Ok::<(), RunError>(())
//! ```

pub use gpu_sim as sim;
pub use gpumem_baselines as baselines;
pub use gpumem_core as core;
pub use gpumem_index as index;
pub use gpumem_seq as seq;

// The serving/session API at the root, so batch users need one `use`.
pub use gpumem_core::{
    Engine, EngineBuilder, Gpumem, GpumemConfig, GpumemResult, GpumemStats, IndexBuildReport,
    MemCollector, MemSink, MemStage, MetricsSnapshot, PinnedSession, Queries, RefEntryInfo,
    RefHandle, RefSession, Registry, RegistryStats, RunError, RunOptions, RunOutput, RunRequest,
    SchedulePolicy, SeedMode, SessionCache, ShardHealth, ShardPlan, Trace, TraceRecorder,
};

// The telemetry subsystem (metrics exposition, event journal, clocks),
// likewise at the root — see `gpumem_core::telemetry`.
pub use gpumem_core::{
    Event, EventSink, EventValue, JsonlEventSink, ManualClock, MemoryEventSink, MetricsRegistry,
    TelemetryClock, WallClock,
};
