//! Allocation-regression tests for the device buffer pool.
//!
//! The pool exists so repeated tile/row launches stop allocating:
//! after a warm-up pass over one geometry, subsequent passes must
//! report **zero** fresh pool allocations (`LaunchStats::pool_allocs`).
//! These tests pin that property so a refactor that quietly reverts to
//! per-launch allocation fails CI instead of silently regressing.

use gpumem::core::{Gpumem, GpumemConfig};
use gpumem::index::{build_gpu, Region};
use gpumem::seq::{GenomeModel, MutationModel, PackedSeq};
use gpumem::sim::{Device, DeviceSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn second_index_build_reuses_all_pool_storage() {
    let seq = GenomeModel::mammalian().generate(4_000, 77);
    let device = Device::new(DeviceSpec::test_tiny());

    // Two same-geometry rows, as the pipeline's row loop issues them.
    let rows = [
        Region {
            start: 0,
            len: 2_000,
        },
        Region {
            start: 2_000,
            len: 2_000,
        },
    ];
    let (_, first) = build_gpu(&device, &seq, rows[0], 6, 5);
    assert!(
        first.pool_allocs > 0,
        "cold build must allocate through the pool, got {first:?}"
    );
    let (_, second) = build_gpu(&device, &seq, rows[1], 6, 5);
    assert_eq!(
        second.pool_allocs, 0,
        "second row of identical geometry must reuse pooled buffers"
    );
}

#[test]
fn second_pipeline_run_allocates_nothing_from_the_pool() {
    let reference = GenomeModel::mammalian().generate(4_000, 2024);
    let query = {
        let model = MutationModel {
            sub_rate: 0.03,
            indel_rate: 0.003,
        };
        let mut rng = StdRng::seed_from_u64(2025);
        PackedSeq::from_codes(&model.apply(&reference.to_codes(), &mut rng))
    };

    let config = GpumemConfig::builder(25)
        .seed_len(6)
        .threads_per_block(64)
        .blocks_per_tile(2)
        .build()
        .unwrap();
    let gpumem = Gpumem::with_device(config, Device::new(DeviceSpec::test_tiny()));

    let warm = gpumem.run(&reference, &query).unwrap();
    let cold_allocs = warm.stats.index.pool_allocs + warm.stats.matching.pool_allocs;
    assert!(
        cold_allocs > 0,
        "first run must populate the pool, stats: {:?}",
        warm.stats
    );
    // Multi-row grid, so rows after the first already reuse in-run.
    assert!(warm.stats.rows > 1, "test geometry must span rows");

    let rerun = gpumem.run(&reference, &query).unwrap();
    assert_eq!(
        rerun.stats.index.pool_allocs + rerun.stats.matching.pool_allocs,
        0,
        "a warmed device must serve a whole run without fresh allocations"
    );
    assert_eq!(rerun.mems, warm.mems, "reuse must not change output");
}

#[test]
fn in_run_rows_after_the_first_reuse_pool_storage() {
    // Drive the row loop by hand: the pipeline builds one partial index
    // per tile row; every row after the first must be allocation-free.
    let seq = GenomeModel::mammalian().generate(6_000, 99);
    let device = Device::new(DeviceSpec::test_tiny());
    let row_len = 1_500;
    let mut fresh_per_row = Vec::new();
    for row in 0..4 {
        let (_, stats) = build_gpu(
            &device,
            &seq,
            Region {
                start: row * row_len,
                len: row_len,
            },
            6,
            5,
        );
        fresh_per_row.push(stats.pool_allocs);
    }
    assert!(fresh_per_row[0] > 0, "{fresh_per_row:?}");
    assert_eq!(&fresh_per_row[1..], &[0, 0, 0], "{fresh_per_row:?}");
}
