//! Smoke test of every experiment harness at a miniature scale,
//! asserting the *shape* properties DESIGN.md §4 promises. One test fn
//! (the harnesses share the GPUMEM_OUT env var).

use gpumem_bench::experiments::{fig4, fig5, fig6, fig7, k40, memtable, stages, table3, table4};

const SCALE: f64 = 1.0 / 8192.0;
const SEED: u64 = 4242;

#[test]
fn experiment_shapes_hold_at_miniature_scale() {
    let dir = std::env::temp_dir().join("gpumem-experiments-smoke");
    std::env::set_var("GPUMEM_OUT", &dir);

    // Table III: nine rows; GPUMEM index build grows as L shrinks
    // within each pair group (Δs shrinks → more sampled locations).
    // At miniature scale the per-seed copy/sort kernels (which are
    // step-independent) dominate, so the L ordering is only weak here;
    // the default-scale `table3` binary shows the strict growth.
    let t3 = table3::run(SCALE, SEED);
    assert_eq!(t3.len(), 9);
    assert!(t3[0] <= t3[2], "chr1m: L=100 build must not exceed L=30");
    assert!(t3[3] <= t3[4], "chrXc: L=50 build must not exceed L=30");

    // Table IV: nine rows; all tools agreed (asserted inside run());
    // GPUMEM extraction grows as L shrinks.
    // (The L-vs-time ordering needs real workload sizes — at miniature
    // scale the w-round fixed overhead grows with Δs and can invert it;
    // the default-scale `table4` binary shows the paper's ordering.)
    let t4 = table4::run(SCALE, SEED);
    assert_eq!(t4.len(), 9);
    assert!(t4[0].1 <= t4[2].1, "MEM count grows as L shrinks");
    assert!(t4.iter().all(|&(secs, _)| secs > 0.0));

    // Figure 4: time and #MEMs grow with |Q|.
    let f4 = fig4::run(SCALE, SEED);
    assert_eq!(f4.len(), 5);
    assert!(f4[0].1 < f4[4].1, "time grows with the query");
    assert!(f4[0].2 <= f4[4].2, "MEM count grows with the query");

    // Figure 5: the MEM count decreases with L (the time series needs
    // default-scale workloads to dominate the per-round overhead).
    let f5 = fig5::run(SCALE, SEED);
    assert_eq!(f5.len(), 5);
    assert!(f5[0].2 > f5[4].2, "MEM count falls as L grows");
    assert!(f5.windows(2).all(|w| w[0].2 >= w[1].2), "monotone counts");

    // Figure 6: heavy-tailed occurrence histogram.
    let f6 = fig6::run(SCALE, SEED);
    assert!(f6.len() > 3);
    assert_eq!(f6[0].0, 1);
    assert!(f6[0].1 > 1000, "most seeds occur once");
    let tail: u64 = f6.iter().filter(|(occ, _)| *occ >= 6).map(|(_, n)| n).sum();
    assert!(tail > 0, "a heavy tail must exist");

    // Figure 7 at miniature scale only checks consistency (the > 1
    // speedups need the default scale; the fig7 binary shows them).
    let f7 = fig7::run(SCALE, SEED);
    assert_eq!(f7.len(), 9);
    for (with_lb, without_lb) in f7 {
        assert!(with_lb > 0.0 && without_lb > 0.0);
    }

    // Extension experiments.
    let s1 = stages::run(SCALE, SEED);
    assert_eq!(s1.len(), 9);
    for (out_block, out_tile) in s1 {
        assert!(
            out_tile <= out_block,
            "§III-C2: out-tile ({out_tile}) must not exceed out-block ({out_block})"
        );
    }
    let k = k40::run(SCALE, SEED);
    for (t20, t40) in k {
        assert!(t40 <= t20, "the K40 cannot model slower than the K20c");
    }
    let m1 = memtable::run(SCALE, SEED);
    assert_eq!(m1.len(), 9);
    assert!(m1.iter().all(|&(g, full)| g > 0 && full > 0));
}
