//! Pins the modeled execution of the full pipeline on a fixed seed
//! dataset: every `LaunchStats` counter and the complete MEM output.
//!
//! Host-side performance work (buffer pooling, bulk memory ops, scratch
//! reuse) must never move modeled time or results — this snapshot is the
//! proof. If an intentional *model* change (cost table, scheduling,
//! kernel shape) shifts these numbers, re-harvest them by running the
//! test and copying the `actual:` block from the failure message.
//!
//! Deliberately excluded: `wall_time` (host-machine dependent) and
//! `pool_allocs` (host-side bookkeeping that optimization is expected
//! to change).

use gpumem::core::{Gpumem, GpumemConfig, IndexKind};
use gpumem::seq::{GenomeModel, Mem, MutationModel, PackedSeq};
use gpumem::sim::{Device, DeviceSpec, LaunchStats};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn smoke_pair() -> (PackedSeq, PackedSeq) {
    let reference = GenomeModel::mammalian().generate(4_000, 2024);
    let query = {
        let model = MutationModel {
            sub_rate: 0.03,
            indel_rate: 0.003,
        };
        let mut rng = StdRng::seed_from_u64(2025);
        PackedSeq::from_codes(&model.apply(&reference.to_codes(), &mut rng))
    };
    (reference, query)
}

fn gpumem(kind: IndexKind) -> Gpumem {
    let config = GpumemConfig::builder(25)
        .seed_len(6)
        .threads_per_block(64)
        .blocks_per_tile(2)
        .index_kind(kind)
        .build()
        .expect("valid config");
    Gpumem::with_device(config, Device::new(DeviceSpec::test_tiny()))
}

/// FNV-1a over every MEM triplet, order-sensitive: pins the exact output
/// sequence without pasting thousands of literals.
fn mem_hash(mems: &[Mem]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |v: u64| {
        h = (h ^ v).wrapping_mul(0x0000_0100_0000_01B3);
    };
    for m in mems {
        mix(m.r as u64);
        mix(m.q as u64);
        mix(u64::from(m.len));
    }
    h
}

fn render_stats(tag: &str, s: &LaunchStats) -> String {
    format!(
        "{tag}: launches={} blocks={} warps={} warp_cycles={} lane_cycles={} \
         device_cycles={} modeled_ns={} divergence={} atomics={} global={} compares={}",
        s.launches,
        s.blocks,
        s.warps,
        s.warp_cycles,
        s.lane_cycles,
        s.device_cycles,
        s.modeled_time.as_nanos(),
        s.divergence_events,
        s.atomic_ops,
        s.global_mem_ops,
        s.comparisons,
    )
}

fn snapshot(kind: IndexKind) -> String {
    let (reference, query) = smoke_pair();
    let result = gpumem(kind).run(&reference, &query).unwrap();
    let s = &result.stats;
    let c = &s.counts;
    format!(
        "{}\n{}\ntiles: {}x{}\ncounts: in_block={} out_block={} in_tile={} out_tile={} \
         from_global={} total={}\nmems: n={} fnv=0x{:016x}",
        render_stats("index", &s.index),
        render_stats("matching", &s.matching),
        s.rows,
        s.cols,
        c.in_block,
        c.out_block,
        c.in_tile,
        c.out_tile,
        c.from_global,
        c.total,
        result.mems.len(),
        mem_hash(&result.mems),
    )
}

#[test]
fn dense_pipeline_modeled_stats_and_output_are_pinned() {
    let expect = "\
index: launches=14 blocks=18 warps=624 warp_cycles=43059 lane_cycles=1291192 device_cycles=20768 modeled_ns=90768 divergence=47 atomics=400 global=75416 compares=12
matching: launches=7 blocks=11 warps=6488 warp_cycles=105940 lane_cycles=1708395 device_cycles=32563 modeled_ns=67563 divergence=1592 atomics=0 global=52228 compares=42775
tiles: 2x2
counts: in_block=153 out_block=5 in_tile=1 out_tile=3 from_global=1 total=155
mems: n=155 fnv=0x7f5fd4641554ede1";
    let actual = snapshot(IndexKind::DenseTable);
    assert_eq!(
        actual, expect,
        "\nmodeled execution drifted.\nactual:\n{actual}\n"
    );
}

#[test]
fn compact_pipeline_modeled_stats_and_output_are_pinned() {
    let expect = "\
index: launches=4 blocks=4 warps=160 warp_cycles=2282 lane_cycles=42378 device_cycles=1141 modeled_ns=21141 divergence=1 atomics=0 global=800 compares=3584
matching: launches=7 blocks=11 warps=6488 warp_cycles=158100 lane_cycles=3276843 device_cycles=47699 modeled_ns=82699 divergence=1592 atomics=0 global=150256 compares=42775
tiles: 2x2
counts: in_block=153 out_block=5 in_tile=1 out_tile=3 from_global=1 total=155
mems: n=155 fnv=0x7f5fd4641554ede1";
    let actual = snapshot(IndexKind::CompactDirectory);
    assert_eq!(
        actual, expect,
        "\nmodeled execution drifted.\nactual:\n{actual}\n"
    );
}

/// Observability is pure bookkeeping: running with a trace recorder
/// installed must leave the output and every modeled counter exactly
/// where the untraced (pinned) run has them, and the trace's Stage
/// spans must partition the run — their stats summing to the run
/// totals counter for counter, with no gap and no double count.
#[test]
fn traced_run_changes_nothing_and_stage_spans_reconcile_exactly() {
    let (reference, query) = smoke_pair();
    for kind in [IndexKind::DenseTable, IndexKind::CompactDirectory] {
        let plain = gpumem(kind).run(&reference, &query).unwrap();
        let (traced, trace) = gpumem(kind).run_traced(&reference, &query).unwrap();
        assert_eq!(traced.mems, plain.mems, "{kind:?}: output drifted");
        assert_eq!(
            render_stats("index", &traced.stats.index),
            render_stats("index", &plain.stats.index),
            "{kind:?}: modeled index stats drifted under tracing"
        );
        assert_eq!(
            render_stats("matching", &traced.stats.matching),
            render_stats("matching", &plain.stats.matching),
            "{kind:?}: modeled matching stats drifted under tracing"
        );
        let mut run_total = traced.stats.index.clone();
        run_total += traced.stats.matching.clone();
        assert_eq!(
            trace.stage_totals(),
            run_total,
            "{kind:?}: stage spans do not reconcile with run totals"
        );
    }
}
