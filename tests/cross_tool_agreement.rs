//! The central cross-crate invariant: GPUMEM and all four CPU
//! baselines emit the *identical canonical MEM set*, which equals the
//! ground-truth naive finder.

use gpumem::baselines::{find_mems_parallel, EssaMem, MemFinder, Mummer, SlaMem, SparseMem};
use gpumem::core::{Gpumem, GpumemConfig};
use gpumem::seq::{naive_mems, table2_pairs, Mem, PackedSeq};
use gpumem::sim::{Device, DeviceSpec};

fn gpumem_run(reference: &PackedSeq, query: &PackedSeq, min_len: u32, seed_len: usize) -> Vec<Mem> {
    let config = GpumemConfig::builder(min_len)
        .seed_len(seed_len)
        .threads_per_block(16)
        .blocks_per_tile(2)
        .build()
        .expect("valid config");
    Gpumem::with_device(config, Device::new(DeviceSpec::test_tiny()))
        .run(reference, query)
        .expect("the tiny device fits these datasets")
        .mems
}

#[test]
fn all_five_tools_agree_on_every_scaled_pair() {
    for (pair_idx, spec) in table2_pairs(1.0 / 65536.0).iter().enumerate() {
        let pair = spec.realize(777);
        for &min_len in &spec.l_values {
            // Keep L small enough for the miniature sequences but
            // exercise the paper's per-pair values when feasible.
            let min_len = min_len.clamp(10, 24);
            let expect = naive_mems(&pair.reference, &pair.query, min_len);

            let got = gpumem_run(&pair.reference, &pair.query, min_len, 7);
            assert_eq!(got, expect, "GPUMEM, pair {pair_idx}, L={min_len}");

            let sparse = SparseMem::build(&pair.reference, 4);
            assert_eq!(
                sparse.find_mems(&pair.query, min_len),
                expect,
                "sparseMEM, pair {pair_idx}, L={min_len}"
            );
            let essa = EssaMem::build(&pair.reference, 4);
            assert_eq!(
                essa.find_mems(&pair.query, min_len),
                expect,
                "essaMEM, pair {pair_idx}, L={min_len}"
            );
            let mummer = Mummer::build(&pair.reference);
            assert_eq!(
                mummer.find_mems(&pair.query, min_len),
                expect,
                "MUMmer, pair {pair_idx}, L={min_len}"
            );
            let sla = SlaMem::build(&pair.reference);
            assert_eq!(
                sla.find_mems(&pair.query, min_len),
                expect,
                "slaMEM, pair {pair_idx}, L={min_len}"
            );
        }
    }
}

#[test]
fn parallel_baselines_agree_with_gpumem_across_thread_counts() {
    let spec = &table2_pairs(1.0 / 32768.0)[1];
    let pair = spec.realize(778);
    let min_len = 18;
    let expect = gpumem_run(&pair.reference, &pair.query, min_len, 8);

    let essa = EssaMem::build(&pair.reference, 4);
    for threads in [1usize, 2, 4, 8] {
        assert_eq!(
            find_mems_parallel(&essa, &pair.query, min_len, threads),
            expect,
            "τ = {threads}"
        );
    }
    // sparseMEM with its τ-coupled sparseness still produces the same
    // set (only its cost changes).
    for k in [1usize, 4, 8] {
        let sparse = SparseMem::build(&pair.reference, k);
        assert_eq!(
            find_mems_parallel(&sparse, &pair.query, min_len, k),
            expect,
            "K = τ = {k}"
        );
    }
}

#[test]
fn agreement_holds_on_microsatellite_heavy_input() {
    // Tandem repeats are the classic MEM-explosion stressor; every tool
    // must produce the same (large) set.
    let mut codes = Vec::new();
    for i in 0..600usize {
        codes.push([0u8, 1][i % 2]); // (AC)n
    }
    for i in 0..600usize {
        codes.push([2u8, 3, 1][i % 3]); // (GTC)n
    }
    let reference = PackedSeq::from_codes(&codes);
    codes.rotate_left(37);
    let query = PackedSeq::from_codes(&codes[..900]);
    let min_len = 15;

    let expect = naive_mems(&reference, &query, min_len);
    assert!(
        expect.len() > 100,
        "stressor must explode: {}",
        expect.len()
    );
    assert_eq!(gpumem_run(&reference, &query, min_len, 6), expect);
    assert_eq!(Mummer::build(&reference).find_mems(&query, min_len), expect);
    assert_eq!(SlaMem::build(&reference).find_mems(&query, min_len), expect);
    assert_eq!(
        SparseMem::build(&reference, 3).find_mems(&query, min_len),
        expect
    );
    assert_eq!(
        EssaMem::build(&reference, 3).find_mems(&query, min_len),
        expect
    );
}
