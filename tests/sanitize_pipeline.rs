//! The acceptance gate for the kernel sanitizer: the full GPUMEM
//! pipeline — all four index-build steps, the device-wide scan, the
//! match kernels (generate/combine/expand/balance inside
//! `match.blocks`), the tile merge, plus the compact builder's pack +
//! tile-merge sort — runs under an active sanitizer session on a smoke
//! dataset with **zero hazards**.

use gpumem::core::{Gpumem, GpumemConfig};
use gpumem::index::{build_compact_gpu, build_gpu, Region};
use gpumem::seq::{GenomeModel, MutationModel, PackedSeq};
use gpumem::sim::sanitizer::Session;
use gpumem::sim::{Device, DeviceSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn smoke_pair() -> (PackedSeq, PackedSeq) {
    let reference = GenomeModel::mammalian().generate(4_000, 2024);
    let query = {
        let model = MutationModel {
            sub_rate: 0.03,
            indel_rate: 0.003,
        };
        let mut rng = StdRng::seed_from_u64(2025);
        PackedSeq::from_codes(&model.apply(&reference.to_codes(), &mut rng))
    };
    (reference, query)
}

#[test]
fn full_pipeline_is_hazard_free_under_sanitizer() {
    let (reference, query) = smoke_pair();
    let config = GpumemConfig::builder(25)
        .seed_len(6)
        .threads_per_block(64)
        .blocks_per_tile(4)
        .build()
        .expect("valid config");
    let gpumem = Gpumem::with_device(config, Device::new(DeviceSpec::test_tiny()));

    // Unsanitized reference run first: the sanitizer must not change
    // results (suppressed accesses only happen on hazards).
    let baseline = gpumem.run(&reference, &query).unwrap();

    let session = Session::start();
    let sanitized = gpumem.run(&reference, &query).unwrap();
    let report = session.finish();

    assert!(report.is_clean(), "pipeline hazards:\n{report}");
    assert!(
        report.launches > 4,
        "expected every kernel family to launch"
    );
    assert!(
        report.accesses_checked > 0,
        "instrumentation saw no accesses"
    );
    assert_eq!(sanitized.mems, baseline.mems, "sanitizing changed results");
}

#[test]
fn dual_sampled_pipeline_is_hazard_free_under_sanitizer() {
    // The dual probe schedule changes the round structure inside
    // `match.blocks` (only rounds on the k2 grid execute), so it gets
    // its own zero-hazard gate. L = 25, ℓs = 6 → bound 20; (4, 5) is a
    // valid co-prime pair with w = 20.
    let (reference, query) = smoke_pair();
    let config = GpumemConfig::builder(25)
        .seed_len(6)
        .threads_per_block(64)
        .blocks_per_tile(4)
        .seed_mode(gpumem::SeedMode::DualSampled { k1: 4, k2: 5 })
        .build()
        .expect("valid config");
    let gpumem = Gpumem::with_device(config, Device::new(DeviceSpec::test_tiny()));

    let baseline = gpumem.run(&reference, &query).unwrap();

    let session = Session::start();
    let sanitized = gpumem.run(&reference, &query).unwrap();
    let report = session.finish();

    assert!(report.is_clean(), "dual pipeline hazards:\n{report}");
    assert!(
        report.launches > 4,
        "expected every kernel family to launch"
    );
    assert_eq!(sanitized.mems, baseline.mems, "sanitizing changed results");
}

#[test]
fn work_stealing_pipeline_is_hazard_free_under_sanitizer() {
    // The persistent-block steal queue is the one new concurrent
    // primitive of the locality/balance work: every push races an
    // atomic slot reservation, every pop races the ticket counter, and
    // the host-side `pending` barrier separates refill from drain. A
    // repeat-heavy pair drives real contention (cross-slot steals), and
    // the full knob stack — stealing + staging + mass-descending
    // scheduling — must come out hazard-free with the MEM set intact.
    let (reference, query) = {
        let (mut reference, query) = smoke_pair();
        let mut codes = reference.to_codes();
        for slot in codes[1_000..1_600].iter_mut() {
            *slot = 1; // poly-C block: one seed code owns 600 locations
        }
        reference = PackedSeq::from_codes(&codes);
        (reference, query)
    };
    let config = GpumemConfig::builder(25)
        .seed_len(6)
        .threads_per_block(64)
        .blocks_per_tile(4)
        .schedule_policy(gpumem::core::SchedulePolicy::MassDescending)
        .work_stealing(true)
        .query_staging(true)
        .build()
        .expect("valid config");
    let gpumem = Gpumem::with_device(config, Device::new(DeviceSpec::test_tiny()));

    let baseline = {
        let plain = GpumemConfig::builder(25)
            .seed_len(6)
            .threads_per_block(64)
            .blocks_per_tile(4)
            .build()
            .unwrap();
        Gpumem::with_device(plain, Device::new(DeviceSpec::test_tiny()))
            .run(&reference, &query)
            .unwrap()
    };

    let session = Session::start();
    let sanitized = gpumem.run(&reference, &query).unwrap();
    let report = session.finish();

    assert!(report.is_clean(), "steal-queue hazards:\n{report}");
    assert!(
        sanitized.stats.matching.steal_events > 0,
        "skewed fixture must exercise cross-slot steals"
    );
    assert_eq!(
        sanitized.mems, baseline.mems,
        "knob stack changed the MEM set"
    );
}

#[test]
fn dense_and_compact_index_builds_are_hazard_free() {
    let (reference, _) = smoke_pair();
    let device = Device::new(DeviceSpec::test_tiny());

    let session = Session::start();
    let (dense, _) = build_gpu(&device, &reference, Region::whole(&reference), 6, 3);
    let report = session.finish();
    assert!(report.is_clean(), "dense build hazards:\n{report}");
    assert!(dense.num_locations() > 0);

    // Compact build covers the pack kernel and the tile-merge sort.
    let session = Session::start();
    let (compact, _) = build_compact_gpu(&device, &reference, Region::whole(&reference), 6, 3);
    let report = session.finish();
    assert!(report.is_clean(), "compact build hazards:\n{report}");
    assert!(compact.num_entries() > 0);
}

#[test]
fn sanitizer_still_catches_a_seeded_bug_in_context() {
    // The zero-hazard runs above only mean something if the same
    // session machinery still flags a real bug: re-run the index fill
    // with a cursor that was never offset (every bucket starts at 0),
    // which double-books locs slots across blocks.
    let (reference, _) = smoke_pair();
    let device = Device::new(DeviceSpec::test_tiny());
    use gpumem::sim::{GpuU32, LaunchConfig};

    let n = 1_024usize;
    let locs = GpuU32::named(n, "bug.locs");
    let bad_cursor = GpuU32::named(1, "bug.cursor_a");
    let bad_cursor_b = GpuU32::named(1, "bug.cursor_b");
    let _ = reference;

    let session = Session::start();
    device.launch_fn_named(LaunchConfig::new(2, 32), "bug.fill", |ctx| {
        let block = ctx.block_id;
        ctx.simt(|lane| {
            // Each block reserves through its own zeroed cursor: both
            // hand out slots starting at 0 on the same target.
            let cursor = if block == 0 {
                &bad_cursor
            } else {
                &bad_cursor_b
            };
            let base = lane.atomic_reserve32(cursor, 0, 1, &locs);
            lane.st32(&locs, base as usize, lane.tid as u32);
        });
    });
    let report = session.finish();
    assert!(!report.is_clean(), "seeded bug not caught");
    let text = report.to_string();
    assert!(
        text.contains("bug.locs"),
        "report must name the double-booked buffer:\n{text}"
    );
}
