//! End-to-end tests of the observability surface of `gpumem-cli`:
//! `--trace` emits valid Chrome Trace Event JSON whose Stage events
//! reconcile with the run, `--metrics` emits a well-formed serving
//! snapshot, `--profile` prints the stage table, and none of the three
//! may change the match output.

use std::io::Write;
use std::process::Command;

use gpumem::seq::{write_fasta, FastaRecord, GenomeModel, MutationModel, PackedSeq};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::json::{parse, Value};

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_gpumem-cli"))
}

fn write_pair(dir: &std::path::Path) -> (String, String) {
    let reference = GenomeModel::mammalian().generate(6_000, 4321);
    let query = {
        let model = MutationModel {
            sub_rate: 0.03,
            indel_rate: 0.003,
        };
        let mut rng = StdRng::seed_from_u64(4322);
        PackedSeq::from_codes(&model.apply(&reference.to_codes(), &mut rng))
    };
    let write = |name: &str, seq: &PackedSeq| -> String {
        let path = dir.join(name);
        let mut file = std::fs::File::create(&path).unwrap();
        write_fasta(
            &mut file,
            &[FastaRecord {
                header: name.into(),
                seq: seq.clone(),
            }],
        )
        .unwrap();
        file.flush().unwrap();
        path.to_str().unwrap().to_string()
    };
    (write("ref.fa", &reference), write("query.fa", &query))
}

fn field<'v>(value: &'v Value, key: &str) -> &'v Value {
    value
        .get(key)
        .unwrap_or_else(|| panic!("missing field {key:?}"))
}

#[test]
fn trace_flag_emits_chrome_trace_json_that_reconciles() {
    let dir = std::env::temp_dir().join("gpumem-obs-trace");
    std::fs::create_dir_all(&dir).unwrap();
    let (ref_fa, query_fa) = write_pair(&dir);
    let trace_path = dir.join("trace.json");

    let baseline = cli()
        .args(["--min-len", "25", &ref_fa, &query_fa])
        .output()
        .expect("binary runs");
    assert!(baseline.status.success());

    let out = cli()
        .args([
            "--min-len",
            "25",
            "--trace",
            trace_path.to_str().unwrap(),
            &ref_fa,
            &query_fa,
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "--trace run failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        out.stdout, baseline.stdout,
        "--trace changed the match output"
    );

    let trace = parse(&std::fs::read_to_string(&trace_path).unwrap()).expect("valid JSON");
    assert_eq!(
        field(&trace, "displayTimeUnit").as_str(),
        Some("ms"),
        "Chrome Trace header"
    );
    let events = field(&trace, "traceEvents").as_array().unwrap();
    assert!(!events.is_empty());

    // Every event is a complete duration event; Stage events carry the
    // per-launch device stats in args.
    let mut stage_warp_cycles = 0u64;
    let mut cats = Vec::new();
    for event in events {
        assert_eq!(field(event, "ph").as_str(), Some("X"));
        assert!(field(event, "ts").as_f64().is_some());
        assert!(field(event, "dur").as_f64().unwrap() >= 0.0);
        assert!(field(event, "name").as_str().is_some());
        assert_eq!(field(event, "pid").as_u64(), Some(1));
        assert!(field(event, "tid").as_u64().is_some());
        let cat = field(event, "cat").as_str().unwrap().to_string();
        if cat == "Stage" {
            let stats = field(field(event, "args"), "stats");
            stage_warp_cycles += field(stats, "warp_cycles").as_u64().unwrap();
        }
        cats.push(cat);
    }
    for expected in ["Run", "TileRow", "Tile", "Stage", "Launch", "Phase"] {
        assert!(
            cats.iter().any(|c| c == expected),
            "no {expected} event in trace"
        );
    }
    for stage in ["index_build", "block_batch", "tile_merge", "global_merge"] {
        assert!(
            events.iter().any(|e| {
                field(e, "cat").as_str() == Some("Stage")
                    && field(e, "name").as_str() == Some(stage)
            }),
            "no {stage} Stage event"
        );
    }

    // Stage events partition the run's launches, so their warp cycles
    // must equal the sum over Launch events exactly.
    let launch_warp_cycles: u64 = events
        .iter()
        .filter(|e| field(e, "cat").as_str() == Some("Launch"))
        .map(|e| {
            field(field(field(e, "args"), "stats"), "warp_cycles")
                .as_u64()
                .unwrap()
        })
        .sum();
    assert!(stage_warp_cycles > 0, "trivial trace");
    assert_eq!(
        stage_warp_cycles, launch_warp_cycles,
        "Stage events do not reconcile with Launch events"
    );
}

#[test]
fn metrics_flag_emits_serving_snapshot() {
    let dir = std::env::temp_dir().join("gpumem-obs-metrics");
    std::fs::create_dir_all(&dir).unwrap();
    let (ref_fa, query_fa) = write_pair(&dir);
    let metrics_path = dir.join("metrics.json");

    let out = cli()
        .args([
            "--min-len",
            "25",
            "--metrics",
            metrics_path.to_str().unwrap(),
            &ref_fa,
            &query_fa,
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "--metrics run failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let m = parse(&std::fs::read_to_string(&metrics_path).unwrap()).expect("valid JSON");
    assert_eq!(field(&m, "queries").as_u64(), Some(1));
    assert!(field(&m, "uptime_s").as_f64().unwrap() > 0.0);

    let latency = field(&m, "latency");
    assert_eq!(field(latency, "count").as_u64(), Some(1));
    assert!(field(latency, "mean_ms").as_f64().unwrap() > 0.0);
    assert!(field(latency, "max_ms").as_f64().unwrap() > 0.0);
    assert!(field(latency, "p50_ms").as_f64().unwrap() > 0.0);
    let buckets = field(latency, "buckets").as_array().unwrap();
    let bucketed: u64 = buckets
        .iter()
        .map(|b| field(b, "count").as_u64().unwrap())
        .sum();
    assert_eq!(bucketed, 1, "the one query lands in exactly one bucket");

    // One cold query builds every row index once and never hits.
    let cache = field(&m, "index_cache");
    let rows = field(cache, "rows").as_u64().unwrap();
    assert!(rows > 0);
    assert_eq!(field(cache, "built").as_u64(), Some(rows));
    assert_eq!(field(cache, "misses").as_u64(), Some(rows));
    assert_eq!(field(cache, "hits").as_u64(), Some(0));
    assert!(field(cache, "build_wait_s").as_f64().unwrap() > 0.0);

    let workers = field(&m, "workers").as_array().unwrap();
    assert_eq!(workers.len(), 1);
    assert_eq!(field(&workers[0], "queries").as_u64(), Some(1));
    let utilization = field(&workers[0], "utilization").as_f64().unwrap();
    assert!(utilization > 0.0 && utilization <= 1.0);
}

#[test]
fn profile_flag_prints_stage_table_to_stderr() {
    let dir = std::env::temp_dir().join("gpumem-obs-profile");
    std::fs::create_dir_all(&dir).unwrap();
    let (ref_fa, query_fa) = write_pair(&dir);

    let out = cli()
        .args(["--min-len", "25", "--profile", &ref_fa, &query_fa])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "--profile run failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8(out.stderr).unwrap();
    for needle in [
        "stage",
        "index_build",
        "block_batch",
        "seed_lookup",
        "expand",
    ] {
        assert!(stderr.contains(needle), "profile report missing {needle:?}");
    }
}

#[test]
fn observability_flags_reject_cpu_tools() {
    let dir = std::env::temp_dir().join("gpumem-obs-reject");
    std::fs::create_dir_all(&dir).unwrap();
    let (ref_fa, query_fa) = write_pair(&dir);

    let out = cli()
        .args([
            "--tool",
            "mummer",
            "--min-len",
            "25",
            "--profile",
            &ref_fa,
            &query_fa,
        ])
        .output()
        .expect("binary runs");
    assert!(!out.status.success(), "--profile with mummer must fail");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("require --tool gpumem"), "got: {stderr}");
}
