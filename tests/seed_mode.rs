//! Dual-sampling coverage end to end: under `SeedMode::DualSampled`
//! with co-prime steps `(k1, k2)` satisfying `k1·k2 ≤ L − ℓs + 1`, the
//! pipeline's MEM set is byte-identical to `SeedMode::RefOnly` — in
//! particular, a planted MEM of length *exactly* `L` (the worst case
//! the coverage bound still covers) is found at every alignment of its
//! start positions relative to both sample grids.

use gpumem::core::{Gpumem, GpumemConfig, IndexKind, SeedMode};
use gpumem::index::max_coprime_steps;
use gpumem::seq::{naive_mems, GenomeModel, Mem, MutationModel, PackedSeq};
use gpumem::sim::{Device, DeviceSpec};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Overwrite `background[at..at + segment.len()]` with `segment` and
/// pin the flanking characters so a match over the segment cannot
/// extend past either end.
fn splice(background: &mut [u8], at: usize, segment: &[u8], flank_before: u8, flank_after: u8) {
    background[at..at + segment.len()].copy_from_slice(segment);
    if at > 0 {
        background[at - 1] = flank_before;
    }
    let end = at + segment.len();
    if end < background.len() {
        background[end] = flank_after;
    }
}

/// A reference/query pair sharing one segment of length exactly `l` at
/// `(ref_at, query_at)`, with mismatching flanks on both sides in both
/// sequences so the planted MEM is `(ref_at, query_at, l)` precisely.
fn planted_pair(
    l: usize,
    ref_at: usize,
    query_at: usize,
    content_seed: u64,
) -> (PackedSeq, PackedSeq) {
    let shared = GenomeModel::uniform().generate(l, content_seed).to_codes();
    let mut reference = GenomeModel::uniform()
        .generate(ref_at + l + 200, content_seed.wrapping_add(1))
        .to_codes();
    let mut query = GenomeModel::uniform()
        .generate(query_at + l + 200, content_seed.wrapping_add(2))
        .to_codes();
    splice(&mut reference, ref_at, &shared, 0, 2);
    splice(&mut query, query_at, &shared, 1, 3);
    (
        PackedSeq::from_codes(&reference),
        PackedSeq::from_codes(&query),
    )
}

fn run_mode(
    min_len: u32,
    seed_len: usize,
    mode: SeedMode,
    reference: &PackedSeq,
    query: &PackedSeq,
) -> Vec<Mem> {
    // The compact directory keeps the index proportional to the
    // sampled locations — the dense 4^ℓs table would swamp the ℓs = 13
    // grid entries with simulated table scans.
    let config = GpumemConfig::builder(min_len)
        .seed_len(seed_len)
        .threads_per_block(8)
        .blocks_per_tile(2)
        .index_kind(IndexKind::CompactDirectory)
        .seed_mode(mode)
        .build()
        .expect("valid config");
    let gpumem = Gpumem::with_device(config, Device::new(DeviceSpec::test_tiny()));
    gpumem.run(reference, query).unwrap().mems
}

/// The (L, ℓs, k1, k2) grid: for each configuration, sweep the planted
/// exact-L MEM over every joint residue class of `(ref start mod k1,
/// query start mod k2)` — the CRT coverage argument must produce an
/// anchor in each of the `k1·k2` classes. Pairs with `k1·k2` exactly
/// at the bound `L − ℓs + 1` are the Eq.-1-boundary analogues.
#[test]
fn dual_mode_equals_ref_only_on_planted_mems_across_the_grid() {
    // (L, ℓs, k1, k2); products 18, 13, 12, 6, 5 against bounds
    // 18, 13, 43, 6, 14 — the first, second, and fourth sit exactly at
    // the bound.
    let grid: &[(u32, usize, usize, usize)] = &[
        (25, 8, 2, 9),
        (25, 13, 13, 1),
        (50, 8, 3, 4),
        (13, 8, 2, 3),
        (18, 5, 5, 1),
    ];
    for &(min_len, seed_len, k1, k2) in grid {
        let dual = SeedMode::DualSampled { k1, k2 };
        for residue in 0..k1 * k2 {
            let ref_at = 83 + residue % k1;
            let query_at = 59 + residue / k1;
            let (reference, query) = planted_pair(
                min_len as usize,
                ref_at,
                query_at,
                1_000 * min_len as u64 + residue as u64,
            );
            let planted = Mem {
                r: ref_at as u32,
                q: query_at as u32,
                len: min_len,
            };
            let ref_only = run_mode(min_len, seed_len, SeedMode::RefOnly, &reference, &query);
            let dual_mems = run_mode(min_len, seed_len, dual, &reference, &query);
            assert!(
                dual_mems.contains(&planted),
                "planted MEM {planted:?} missing under {dual} (L = {min_len}, ls = {seed_len}): {dual_mems:?}"
            );
            assert_eq!(
                dual_mems, ref_only,
                "MEM sets differ at residue ({}, {}) for (L = {min_len}, ls = {seed_len}, k1 = {k1}, k2 = {k2})",
                ref_at % k1, query_at % k2
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random related sequences, random valid co-prime pair: the whole
    /// canonical MEM set is identical between modes and matches the
    /// ground truth. `min_len` is derived so every drawn pair satisfies
    /// the bound (with 0–4 positions of slack beyond it).
    #[test]
    fn dual_mode_mem_set_equals_ref_only_and_naive(
        k1 in 1usize..6,
        k2 in 1usize..8,
        seed_len in 4usize..9,
        slack in 0u32..5,
        content_seed in 0u64..1_000,
    ) {
        prop_assume!(gpumem::index::gcd(k1, k2) == 1);
        // Floor at 14 so tiny (k1·k2, ℓs) draws don't degenerate into
        // a quadratic all-4-mers MEM set; raising L only loosens the
        // k1·k2 ≤ L − ℓs + 1 bound, so every drawn pair stays valid.
        let min_len = ((seed_len + k1 * k2 - 1) as u32 + slack).max(14);
        let reference = GenomeModel::mammalian().generate(900, content_seed);
        let query = {
            let model = MutationModel { sub_rate: 0.05, indel_rate: 0.005 };
            let mut rng = StdRng::seed_from_u64(content_seed.wrapping_add(7));
            PackedSeq::from_codes(&model.apply(&reference.to_codes(), &mut rng))
        };
        let dual = SeedMode::DualSampled { k1, k2 };
        let ref_only = run_mode(min_len, seed_len, SeedMode::RefOnly, &reference, &query);
        let dual_mems = run_mode(min_len, seed_len, dual, &reference, &query);
        prop_assert_eq!(&dual_mems, &ref_only, "modes disagree for (k1 = {}, k2 = {})", k1, k2);
        prop_assert_eq!(dual_mems, naive_mems(&reference, &query, min_len));
    }

    /// The auto-derived pair from `max_coprime_steps` is always valid
    /// end to end.
    #[test]
    fn auto_coprime_pair_is_exact_end_to_end(
        min_len in 20u32..60,
        seed_len in 4usize..9,
        content_seed in 0u64..1_000,
    ) {
        let (k1, k2) = max_coprime_steps(min_len, seed_len).unwrap();
        let reference = GenomeModel::mammalian().generate(800, content_seed);
        let query = {
            let model = MutationModel { sub_rate: 0.04, indel_rate: 0.004 };
            let mut rng = StdRng::seed_from_u64(content_seed.wrapping_add(11));
            PackedSeq::from_codes(&model.apply(&reference.to_codes(), &mut rng))
        };
        let dual = SeedMode::DualSampled { k1, k2 };
        let got = run_mode(min_len, seed_len, dual, &reference, &query);
        prop_assert_eq!(got, naive_mems(&reference, &query, min_len));
    }
}
