//! End-to-end tests of the `gpumem-cli` binary: FASTA in, MUMmer-style
//! match lines out, identical across tools.

use std::io::Write;
use std::process::Command;

use gpumem::seq::{write_fasta, FastaRecord, GenomeModel, MutationModel, PackedSeq};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_gpumem-cli"))
}

fn write_pair(dir: &std::path::Path) -> (String, String) {
    let reference = GenomeModel::mammalian().generate(8_000, 1234);
    let query = {
        let model = MutationModel {
            sub_rate: 0.03,
            indel_rate: 0.003,
        };
        let mut rng = StdRng::seed_from_u64(1235);
        PackedSeq::from_codes(&model.apply(&reference.to_codes(), &mut rng))
    };
    let write = |name: &str, seq: &PackedSeq| -> String {
        let path = dir.join(name);
        let mut file = std::fs::File::create(&path).unwrap();
        write_fasta(
            &mut file,
            &[FastaRecord {
                header: name.into(),
                seq: seq.clone(),
            }],
        )
        .unwrap();
        file.flush().unwrap();
        path.to_str().unwrap().to_string()
    };
    (write("ref.fa", &reference), write("query.fa", &query))
}

#[test]
fn all_tools_print_identical_matches() {
    let dir = std::env::temp_dir().join("gpumem-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let (ref_fa, query_fa) = write_pair(&dir);

    let run = |tool: &str| -> String {
        let out = cli()
            .args([
                "--tool",
                tool,
                "--min-len",
                "25",
                ref_fa.as_str(),
                query_fa.as_str(),
            ])
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "{tool} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8(out.stdout).unwrap()
    };

    let gpumem = run("gpumem");
    assert!(!gpumem.trim().is_empty(), "expected matches");
    for tool in ["mummer", "essamem", "sparsemem", "slamem"] {
        assert_eq!(run(tool), gpumem, "{tool} output differs");
    }
}

#[test]
fn mum_filter_is_a_subset() {
    let dir = std::env::temp_dir().join("gpumem-cli-test-mum");
    std::fs::create_dir_all(&dir).unwrap();
    let (ref_fa, query_fa) = write_pair(&dir);

    let lines = |extra: &[&str]| -> Vec<String> {
        let mut args = vec!["--tool", "mummer", "--min-len", "25"];
        args.extend_from_slice(extra);
        args.push(ref_fa.as_str());
        args.push(query_fa.as_str());
        let out = cli().args(&args).output().expect("binary runs");
        assert!(out.status.success());
        String::from_utf8(out.stdout)
            .unwrap()
            .lines()
            .map(str::to_string)
            .collect()
    };

    let all = lines(&[]);
    let mums = lines(&["--mum"]);
    assert!(!mums.is_empty());
    assert!(mums.len() <= all.len());
    for line in &mums {
        assert!(all.contains(line), "MUM line not in MEM output: {line}");
    }
}

#[test]
fn sanitize_flag_reports_clean_run() {
    let dir = std::env::temp_dir().join("gpumem-cli-test-sanitize");
    std::fs::create_dir_all(&dir).unwrap();
    let (ref_fa, query_fa) = write_pair(&dir);

    let out = cli()
        .args([
            "--tool",
            "gpumem",
            "--min-len",
            "25",
            "--seed-len",
            "8",
            "--sanitize",
            ref_fa.as_str(),
            query_fa.as_str(),
        ])
        .output()
        .expect("binary runs");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "sanitized run failed: {err}");
    assert!(err.contains("sanitizer:"), "missing report: {err}");
    assert!(err.contains("0 hazard(s)"), "expected clean report: {err}");

    // The report must not change the matches themselves.
    let plain = cli()
        .args([
            "--tool",
            "gpumem",
            "--min-len",
            "25",
            "--seed-len",
            "8",
            ref_fa.as_str(),
            query_fa.as_str(),
        ])
        .output()
        .expect("binary runs");
    assert_eq!(out.stdout, plain.stdout);
}

#[test]
fn bad_usage_fails_cleanly() {
    let out = cli().arg("only-one-file.fa").output().expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("usage:"), "{err}");

    let out = cli()
        .args([
            "--tool",
            "nonsense",
            "/nonexistent/a.fa",
            "/nonexistent/b.fa",
        ])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
}

#[test]
fn multi_record_query_groups_hits_and_names_records() {
    let dir = std::env::temp_dir().join("gpumem-cli-test-multi");
    std::fs::create_dir_all(&dir).unwrap();

    let reference = GenomeModel::mammalian().generate(8_000, 4321);
    let model = MutationModel {
        sub_rate: 0.03,
        indel_rate: 0.003,
    };
    let records: Vec<FastaRecord> = (0..3)
        .map(|i| {
            let mut rng = StdRng::seed_from_u64(4400 + i);
            FastaRecord {
                header: format!("read{i}"),
                seq: PackedSeq::from_codes(&model.apply(&reference.to_codes(), &mut rng)),
            }
        })
        .collect();

    let write = |name: &str, records: &[FastaRecord]| -> String {
        let path = dir.join(name);
        let mut file = std::fs::File::create(&path).unwrap();
        write_fasta(&mut file, records).unwrap();
        file.flush().unwrap();
        path.to_str().unwrap().to_string()
    };
    let ref_fa = write(
        "ref.fa",
        &[FastaRecord {
            header: "ref".into(),
            seq: reference.clone(),
        }],
    );
    let all_fa = write("queries.fa", &records);

    let run = |tool: &str, query_fa: &str, extra: &[&str]| -> String {
        let mut args = vec!["--tool", tool, "--min-len", "25"];
        args.extend_from_slice(extra);
        args.push(ref_fa.as_str());
        args.push(query_fa);
        let out = cli().args(&args).output().expect("binary runs");
        assert!(
            out.status.success(),
            "{tool} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8(out.stdout).unwrap()
    };

    let batched = run("gpumem", &all_fa, &["--query-threads", "2"]);
    assert!(!batched.trim().is_empty(), "expected matches");

    // The batched run must equal the concatenation of per-record runs,
    // with the record name appended to every line, in input order.
    let mut expect = String::new();
    for (i, record) in records.iter().enumerate() {
        let one_fa = write(&format!("q{i}.fa"), std::slice::from_ref(record));
        for line in run("gpumem", &one_fa, &[]).lines() {
            expect.push_str(line);
            expect.push(' ');
            expect.push_str(&record.header);
            expect.push('\n');
        }
    }
    assert_eq!(batched, expect);

    // Worker count must not change the output, and the CPU baselines
    // must agree with the engine on multi-record input too.
    assert_eq!(run("gpumem", &all_fa, &["--query-threads", "4"]), batched);
    assert_eq!(run("mummer", &all_fa, &[]), batched);
}

#[test]
fn seed_mode_dual_matches_ref_only_output() {
    let dir = std::env::temp_dir().join("gpumem-cli-test-seedmode");
    std::fs::create_dir_all(&dir).unwrap();
    let (ref_fa, query_fa) = write_pair(&dir);

    let run = |extra: &[&str]| -> String {
        let mut args = vec!["--tool", "gpumem", "--min-len", "25"];
        args.extend_from_slice(extra);
        args.push(ref_fa.as_str());
        args.push(query_fa.as_str());
        let out = cli().args(&args).output().expect("binary runs");
        assert!(
            out.status.success(),
            "gpumem {extra:?} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8(out.stdout).unwrap()
    };

    let ref_only = run(&["--seed-mode", "ref"]);
    assert_eq!(ref_only, run(&[]), "--seed-mode ref is the default");
    assert!(!ref_only.trim().is_empty(), "expected matches");
    // Auto-derived pair (L = 25, default ℓs = 13 → bound 13) and an
    // explicit valid pair both reproduce the exact MEM set.
    assert_eq!(run(&["--seed-mode", "dual"]), ref_only);
    assert_eq!(run(&["--seed-mode", "dual:3,4"]), ref_only);
}

#[test]
fn seed_mode_validation_errors_are_structured() {
    let dir = std::env::temp_dir().join("gpumem-cli-test-seedmode-err");
    std::fs::create_dir_all(&dir).unwrap();
    let (ref_fa, query_fa) = write_pair(&dir);

    let fail = |extra: &[&str]| -> String {
        let mut args = vec!["--tool", "gpumem", "--min-len", "25"];
        args.extend_from_slice(extra);
        args.push(ref_fa.as_str());
        args.push(query_fa.as_str());
        let out = cli().args(&args).output().expect("binary runs");
        assert!(!out.status.success(), "expected {extra:?} to fail");
        String::from_utf8_lossy(&out.stderr).into_owned()
    };

    // gcd(4, 6) = 2: the structured IndexError names the co-prime
    // requirement.
    let err = fail(&["--seed-mode", "dual:4,6"]);
    assert!(err.contains("co-prime"), "{err}");

    // 13 · 9 = 117 over the bound L − ℓs + 1 = 13: the error names the
    // coverage bound.
    let err = fail(&["--seed-mode", "dual:13,9"]);
    assert!(err.contains("k1*k2"), "{err}");

    // A step of zero and a malformed mode string fail cleanly too.
    let err = fail(&["--seed-mode", "dual:0,3"]);
    assert!(err.contains("step"), "{err}");
    let err = fail(&["--seed-mode", "banana"]);
    assert!(err.contains("expected ref or dual"), "{err}");
    let err = fail(&["--seed-mode", "dual:5"]);
    assert!(err.contains("expected dual:<k1>,<k2>"), "{err}");
}

#[test]
fn locality_knobs_preserve_cli_output() {
    let dir = std::env::temp_dir().join("gpumem-cli-test-locality");
    std::fs::create_dir_all(&dir).unwrap();
    let (ref_fa, query_fa) = write_pair(&dir);

    let run = |extra: &[&str]| -> String {
        let mut args = vec!["--tool", "gpumem", "--min-len", "25", "--seed-len", "8"];
        args.extend_from_slice(extra);
        args.push(ref_fa.as_str());
        args.push(query_fa.as_str());
        let out = cli().args(&args).output().expect("binary runs");
        assert!(
            out.status.success(),
            "gpumem {extra:?} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8(out.stdout).unwrap()
    };

    let baseline = run(&[]);
    assert!(!baseline.trim().is_empty(), "expected matches");
    assert_eq!(
        run(&["--schedule-policy", "inorder"]),
        baseline,
        "inorder is the default"
    );
    assert_eq!(
        run(&[
            "--schedule-policy",
            "mass",
            "--work-stealing",
            "--query-staging"
        ]),
        baseline,
        "the full knob stack must not change the matches"
    );

    let out = cli()
        .args([
            "--schedule-policy",
            "banana",
            ref_fa.as_str(),
            query_fa.as_str(),
        ])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("expected inorder or mass"), "{err}");
}

#[test]
fn run_subcommand_matches_legacy_form_which_notes_deprecation() {
    let dir = std::env::temp_dir().join("gpumem-cli-test-subcmd");
    std::fs::create_dir_all(&dir).unwrap();
    let (ref_fa, query_fa) = write_pair(&dir);

    let legacy = cli()
        .args(["--tool", "gpumem", "--min-len", "25", &ref_fa, &query_fa])
        .output()
        .expect("binary runs");
    assert!(legacy.status.success());
    let err = String::from_utf8_lossy(&legacy.stderr);
    assert!(
        err.contains("deprecated"),
        "missing deprecation note: {err}"
    );

    let sub = cli()
        .args([
            "run",
            "--tool",
            "gpumem",
            "--min-len",
            "25",
            &ref_fa,
            &query_fa,
        ])
        .output()
        .expect("binary runs");
    assert!(sub.status.success());
    let err = String::from_utf8_lossy(&sub.stderr);
    assert!(
        !err.contains("deprecated"),
        "run subcommand should not warn: {err}"
    );
    assert_eq!(sub.stdout, legacy.stdout, "the two forms must agree");
    assert!(!sub.stdout.is_empty(), "expected matches");
}

#[test]
fn shards_flag_preserves_output() {
    let dir = std::env::temp_dir().join("gpumem-cli-test-shards");
    std::fs::create_dir_all(&dir).unwrap();
    let (ref_fa, query_fa) = write_pair(&dir);

    let run = |extra: &[&str]| -> Vec<u8> {
        let mut args = vec!["run", "--tool", "gpumem", "--min-len", "25"];
        args.extend_from_slice(extra);
        args.push(ref_fa.as_str());
        args.push(query_fa.as_str());
        let out = cli().args(&args).output().expect("binary runs");
        assert!(
            out.status.success(),
            "gpumem {extra:?} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        out.stdout
    };

    let single = run(&[]);
    assert!(!single.is_empty(), "expected matches");
    assert_eq!(run(&["--shards", "3"]), single, "sharding changed the MEMs");
    assert_eq!(
        run(&["--shards", "3", "--both-strands"]),
        run(&["--both-strands"]),
        "sharding changed the reverse-strand MEMs"
    );

    let out = cli()
        .args(["run", "--shards", "0", &ref_fa, &query_fa])
        .output()
        .expect("binary runs");
    assert!(!out.status.success(), "--shards 0 must be rejected");
}

#[test]
fn registry_subcommands_round_trip() {
    let dir = std::env::temp_dir().join("gpumem-cli-test-registry");
    std::fs::create_dir_all(&dir).unwrap();
    let (ref_fa, _) = write_pair(&dir);
    let second = GenomeModel::mammalian().generate(6_000, 777);
    let second_fa = {
        let path = dir.join("ref2.fa");
        let mut file = std::fs::File::create(&path).unwrap();
        write_fasta(
            &mut file,
            &[FastaRecord {
                header: "ref2".into(),
                seq: second,
            }],
        )
        .unwrap();
        file.flush().unwrap();
        path.to_str().unwrap().to_string()
    };
    let handles = dir.join("handles.tsv");
    let _ = std::fs::remove_file(&handles);
    let handles = handles.to_str().unwrap();

    let add = |name: &str, fasta: &str| {
        let out = cli()
            .args(["registry", "add", handles, name, fasta, "--min-len", "25"])
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "registry add {name} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8(out.stdout).unwrap();
        assert!(stdout.contains(&format!("registered {name}:")), "{stdout}");
    };
    add("chr1", &ref_fa);
    add("chr2", &second_fa);

    // A duplicate name is refused without clobbering the file.
    let out = cli()
        .args([
            "registry",
            "add",
            handles,
            "chr1",
            &ref_fa,
            "--min-len",
            "25",
        ])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("already registered"), "{err}");

    let out = cli()
        .args(["registry", "list", handles])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let listing = String::from_utf8(out.stdout).unwrap();
    assert!(listing.contains("handle"), "missing header: {listing}");
    assert!(
        listing.contains("chr1") && listing.contains("chr2"),
        "{listing}"
    );

    // Under a tiny budget, warming both references twice must churn.
    let out = cli()
        .args([
            "registry",
            "evict-stats",
            handles,
            "--budget",
            "4096",
            "--rounds",
            "2",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "evict-stats failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stats = String::from_utf8(out.stdout).unwrap();
    for key in [
        "\"references\"",
        "\"evictions\"",
        "\"resident_bytes\"",
        "\"hits\"",
    ] {
        assert!(stats.contains(key), "missing {key} in {stats}");
    }
    let evictions: u64 = stats
        .lines()
        .find(|l| l.contains("\"evictions\""))
        .and_then(|l| l.split(':').nth(1))
        .map(|v| v.trim().trim_end_matches(',').parse().unwrap())
        .unwrap();
    assert!(
        evictions > 0,
        "expected churn under a 4 KiB budget: {stats}"
    );
}

#[test]
fn bench_info_prints_device_catalog() {
    let out = cli()
        .args(["bench-info", "--min-len", "25"])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "bench-info failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    for expected in [
        "Tesla K20c",
        "Tesla K40",
        "test-tiny",
        "tile_len",
        "working set",
    ] {
        assert!(stdout.contains(expected), "missing {expected}: {stdout}");
    }
}

#[test]
fn both_strands_superset_and_strand_column() {
    let dir = std::env::temp_dir().join("gpumem-cli-test-strands");
    std::fs::create_dir_all(&dir).unwrap();
    let (ref_fa, query_fa) = write_pair(&dir);

    let run = |extra: &[&str]| -> Vec<String> {
        let mut args = vec!["--tool", "mummer", "--min-len", "25"];
        args.extend_from_slice(extra);
        args.push(ref_fa.as_str());
        args.push(query_fa.as_str());
        let out = cli().args(&args).output().unwrap();
        assert!(out.status.success());
        String::from_utf8(out.stdout)
            .unwrap()
            .lines()
            .map(str::to_string)
            .collect()
    };
    let forward = run(&[]);
    let both = run(&["--both-strands"]);
    assert!(both.len() >= forward.len());
    assert!(forward.iter().all(|l| l.ends_with('+')));
    for line in &forward {
        assert!(both.contains(line));
    }
}
