//! End-to-end tests of the telemetry subsystem: Prometheus/JSON
//! exposition pinned by golden files (every metric family exactly
//! once, stable names), the structured event journal (lifecycle,
//! index-build, registry pin/unpin/evict, anomaly events) and its
//! exact reconciliation against `Trace::stage_totals()`, deterministic
//! uptime via an injected clock, and the `gpumem-cli metrics export` /
//! `bench-info --check` surfaces.
//!
//! Re-bless the golden files after an intentional exposition change:
//!
//! ```text
//! GPUMEM_BLESS=1 cargo test --test telemetry
//! ```

use std::io::Write;
use std::path::PathBuf;
use std::process::Command;
use std::sync::Arc;
use std::time::Duration;

use gpumem::core::engine::{
    DeviceCounters, IndexCacheStats, LatencyBucket, LatencySummary, WorkerUtilization,
};
use gpumem::core::telemetry;
use gpumem::seq::{write_fasta, FastaRecord, GenomeModel, MutationModel, PackedSeq};
use gpumem::sim::{Device, DeviceSpec, LaunchStats};
use gpumem::{
    Engine, EventSink, GpumemConfig, ManualClock, MemoryEventSink, MetricsSnapshot, Registry,
    RegistryStats, RunOptions, RunRequest, ShardHealth,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::json::parse;

/// Every metric family `export_snapshot` must expose, exactly once.
const FAMILIES: &[&str] = &[
    "gpumem_uptime_seconds",
    "gpumem_queries_total",
    "gpumem_query_latency_seconds",
    "gpumem_query_latency_quantile_seconds",
    "gpumem_query_latency_max_seconds",
    "gpumem_query_latency_mean_seconds",
    "gpumem_index_cache_rows",
    "gpumem_index_cache_built_total",
    "gpumem_index_cache_hits_total",
    "gpumem_index_cache_misses_total",
    "gpumem_index_cache_build_wait_seconds_total",
    "gpumem_worker_queries_total",
    "gpumem_worker_busy_seconds_total",
    "gpumem_worker_utilization",
    "gpumem_device_warp_efficiency",
    "gpumem_device_divergence_rate",
    "gpumem_device_steal_events_total",
    "gpumem_device_block_occupancy",
    "gpumem_device_busiest_block_cycles",
    "gpumem_stage_launches_total",
    "gpumem_stage_blocks_total",
    "gpumem_stage_warps_total",
    "gpumem_stage_warp_cycles_total",
    "gpumem_stage_lane_cycles_total",
    "gpumem_stage_device_cycles_total",
    "gpumem_stage_modeled_seconds_total",
    "gpumem_stage_wall_seconds_total",
    "gpumem_stage_divergence_events_total",
    "gpumem_stage_atomic_ops_total",
    "gpumem_stage_global_mem_ops_total",
    "gpumem_stage_comparisons_total",
    "gpumem_stage_steal_events_total",
    "gpumem_stage_busiest_block_cycles",
    "gpumem_stage_pool_allocs_total",
    "gpumem_stage_pool_peak_bytes",
    "gpumem_registry_attached",
    "gpumem_registry_references",
    "gpumem_registry_pinned",
    "gpumem_registry_resident_bytes",
    "gpumem_registry_peak_resident_bytes",
    "gpumem_registry_budget_bytes",
    "gpumem_registry_hits_total",
    "gpumem_registry_misses_total",
    "gpumem_registry_evictions_total",
    "gpumem_sharded_runs_total",
    "gpumem_shard_count",
    "gpumem_shard_modeled_seconds",
    "gpumem_shard_modeled_max_seconds",
    "gpumem_shard_modeled_mean_seconds",
    "gpumem_shard_imbalance",
];

/// A fully populated snapshot with hand-picked values, so the golden
/// files cover every branch of the exporter (labels, histogram series,
/// per-worker and per-shard fan-out) with deterministic numbers.
fn golden_snapshot() -> MetricsSnapshot {
    MetricsSnapshot {
        uptime_s: 12.5,
        queries: 3,
        latency: LatencySummary {
            count: 3,
            mean_ms: 1.5,
            p50_ms: 1.024,
            p90_ms: 2.048,
            p99_ms: 2.048,
            max_ms: 1.75,
            buckets: vec![
                LatencyBucket {
                    le_us: 1024,
                    count: 2,
                },
                LatencyBucket {
                    le_us: 2048,
                    count: 1,
                },
            ],
        },
        index_cache: IndexCacheStats {
            rows: 3,
            built: 3,
            hits: 6,
            misses: 3,
            build_wait_s: 0.25,
        },
        workers: vec![
            WorkerUtilization {
                queries: 2,
                busy_s: 0.5,
                utilization: 0.04,
            },
            WorkerUtilization {
                queries: 1,
                busy_s: 0.25,
                utilization: 0.02,
            },
        ],
        device: DeviceCounters {
            warp_efficiency: 0.75,
            divergence_rate: 0.125,
            steal_events: 7,
            block_occupancy: 0.5,
            busiest_block_cycles: 4096,
        },
        index: LaunchStats {
            launches: 3,
            blocks: 6,
            warps: 12,
            warp_cycles: 1000,
            lane_cycles: 24000,
            device_cycles: 500,
            modeled_time: Duration::from_micros(500),
            wall_time: Duration::from_millis(2),
            divergence_events: 5,
            atomic_ops: 10,
            global_mem_ops: 20,
            comparisons: 30,
            steal_events: 0,
            busiest_block_cycles: 300,
            pool_allocs: 2,
            pool_peak_bytes: 1 << 20,
        },
        matching: LaunchStats {
            launches: 9,
            blocks: 18,
            warps: 36,
            warp_cycles: 3000,
            lane_cycles: 72000,
            device_cycles: 1500,
            modeled_time: Duration::from_micros(1500),
            wall_time: Duration::from_millis(6),
            divergence_events: 15,
            atomic_ops: 40,
            global_mem_ops: 80,
            comparisons: 120,
            steal_events: 7,
            busiest_block_cycles: 4096,
            pool_allocs: 1,
            pool_peak_bytes: 1 << 21,
        },
        registry: RegistryStats {
            attached: true,
            references: 2,
            pinned: 1,
            resident_bytes: 1 << 20,
            peak_resident_bytes: 1 << 21,
            budget_bytes: 1 << 22,
            hits: 5,
            misses: 2,
            evictions: 1,
        },
        shards: ShardHealth {
            sharded_runs: 2,
            shards: 2,
            last_modeled_s: vec![0.003, 0.001],
            max_modeled_s: 0.003,
            mean_modeled_s: 0.002,
            imbalance: 1.5,
        },
    }
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Byte-compare `actual` against the committed golden file, or rewrite
/// the golden file when `GPUMEM_BLESS=1`.
fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var("GPUMEM_BLESS").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); re-bless with GPUMEM_BLESS=1",
            name
        )
    });
    assert_eq!(
        actual, expected,
        "{name} drifted from the golden file; if intentional, re-bless with GPUMEM_BLESS=1"
    );
}

#[test]
fn prometheus_exposition_matches_golden_with_every_family_exactly_once() {
    let text = telemetry::render_prometheus(&golden_snapshot());
    check_golden("metrics.prom", &text);

    for family in FAMILIES {
        let type_lines = text
            .lines()
            .filter(|l| l.starts_with("# TYPE ") && l.split_whitespace().nth(2) == Some(*family))
            .count();
        assert_eq!(
            type_lines, 1,
            "family {family} must be declared exactly once"
        );
        assert!(
            text.lines().any(|l| l.starts_with(family)),
            "family {family} has no sample"
        );
    }
    // No families beyond the pinned contract sneak in unreviewed.
    let declared = text.lines().filter(|l| l.starts_with("# TYPE ")).count();
    assert_eq!(declared, FAMILIES.len(), "unexpected extra metric family");

    // Histogram exposition is cumulative and +Inf-terminated.
    assert!(text.contains("gpumem_query_latency_seconds_bucket{le=\"+Inf\"} 3"));
    assert!(text.contains("gpumem_query_latency_seconds_count 3"));
    // The first-class shard gauges of the tentpole.
    assert!(text.contains("gpumem_shard_imbalance 1.5"));
    assert!(text.contains("gpumem_shard_modeled_seconds{shard=\"0\"} 0.003"));
}

#[test]
fn json_exposition_matches_golden_and_mirrors_the_family_set() {
    let text = telemetry::render_json(&golden_snapshot());
    check_golden("metrics.json", &text);

    let doc = parse(&text).expect("exposition is valid JSON");
    let metrics = doc.get("metrics").unwrap().as_array().unwrap();
    let mut names: Vec<&str> = metrics
        .iter()
        .map(|m| m.get("name").unwrap().as_str().unwrap())
        .collect();
    let total = names.len();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), total, "duplicate metric family in JSON");
    let mut expected: Vec<&str> = FAMILIES.to_vec();
    expected.sort_unstable();
    assert_eq!(names, expected, "JSON families must mirror Prometheus");
}

fn test_pair(seed: u64) -> (PackedSeq, PackedSeq) {
    let reference = GenomeModel::mammalian().generate(4_000, seed);
    let query = {
        let model = MutationModel {
            sub_rate: 0.03,
            indel_rate: 0.003,
        };
        let mut rng = StdRng::seed_from_u64(seed + 1);
        PackedSeq::from_codes(&model.apply(&reference.to_codes(), &mut rng))
    };
    (reference, query)
}

fn test_config() -> GpumemConfig {
    GpumemConfig::builder(20)
        .seed_len(6)
        .threads_per_block(32)
        .blocks_per_tile(2)
        .build()
        .expect("valid config")
}

#[test]
fn runs_without_a_sink_are_identical_to_instrumented_runs() {
    let (reference, query) = test_pair(9_001);
    let bare = Engine::builder(reference.clone())
        .config(test_config())
        .spec(DeviceSpec::test_tiny())
        .build()
        .unwrap();
    let sink = Arc::new(MemoryEventSink::new());
    let instrumented = Engine::builder(reference)
        .config(test_config())
        .spec(DeviceSpec::test_tiny())
        .clock(Arc::new(ManualClock::new(Duration::ZERO)))
        .event_sink(Arc::clone(&sink) as Arc<dyn EventSink>)
        .warp_efficiency_floor(2.0)
        .build()
        .unwrap();

    let plain = bare.run(&query).unwrap();
    let observed = instrumented.run(&query).unwrap();
    assert!(!plain.mems.is_empty(), "fixture must produce MEMs");
    assert_eq!(plain.mems, observed.mems, "instrumentation changed MEMs");
    // Wall time is measured, everything modeled must be untouched.
    for (what, a, b) in [
        ("index", &plain.stats.index, &observed.stats.index),
        ("matching", &plain.stats.matching, &observed.stats.matching),
    ] {
        assert_eq!(a.launches, b.launches, "{what} launches");
        assert_eq!(a.warp_cycles, b.warp_cycles, "{what} warp cycles");
        assert_eq!(a.lane_cycles, b.lane_cycles, "{what} lane cycles");
        assert_eq!(a.device_cycles, b.device_cycles, "{what} device cycles");
        assert_eq!(a.modeled_time, b.modeled_time, "{what} modeled time");
        assert_eq!(a.comparisons, b.comparisons, "{what} comparisons");
    }

    // The instrumented run journaled its lifecycle; a floor of 2.0 is
    // unsatisfiable (efficiency ≤ 1.0) so the anomaly detector fired.
    assert_eq!(sink.of_kind("run_start").len(), 1);
    assert_eq!(sink.of_kind("run_end").len(), 1);
    let anomalies = sink.of_kind("anomaly");
    assert_eq!(anomalies.len(), 1);
    let line = anomalies[0].to_json_line();
    assert!(
        line.contains("\"metric\":\"warp_efficiency\""),
        "got {line}"
    );
    assert!(anomalies[0].f64_field("value").unwrap() <= 1.0);
    assert_eq!(anomalies[0].f64_field("floor"), Some(2.0));

    // One cold query: every built row journaled one index_build event.
    let built = instrumented.metrics().index_cache.built;
    assert!(built > 0);
    assert_eq!(sink.of_kind("index_build").len() as u64, built);
}

#[test]
fn run_end_event_reconciles_exactly_with_trace_stage_totals() {
    let (reference, query) = test_pair(9_002);
    let sink = Arc::new(MemoryEventSink::new());
    let engine = Engine::builder(reference)
        .config(test_config())
        .spec(DeviceSpec::test_tiny())
        .event_sink(Arc::clone(&sink) as Arc<dyn EventSink>)
        .build()
        .unwrap();

    let (_, trace) = engine.run_traced(&query).unwrap();
    let totals = trace.stage_totals();
    assert!(totals.launches > 0, "trivial trace");

    let ends = sink.of_kind("run_end");
    assert_eq!(ends.len(), 1);
    let end = &ends[0];
    assert_eq!(end.u64_field("launches"), Some(totals.launches));
    assert_eq!(end.u64_field("warp_cycles"), Some(totals.warp_cycles));
    assert_eq!(end.u64_field("device_cycles"), Some(totals.device_cycles));
    assert_eq!(end.f64_field("modeled_s"), Some(totals.modeled_secs()));
    assert_eq!(end.u64_field("query_len"), Some(query.len() as u64));
}

#[test]
fn manual_clock_makes_uptime_deterministic() {
    let (reference, query) = test_pair(9_003);
    let clock = Arc::new(ManualClock::new(Duration::from_secs(100)));
    let engine = Engine::builder(reference)
        .config(test_config())
        .spec(DeviceSpec::test_tiny())
        .clock(Arc::clone(&clock) as Arc<dyn gpumem::TelemetryClock>)
        .build()
        .unwrap();
    engine.run(&query).unwrap();

    clock.advance(Duration::from_millis(12_500));
    assert_eq!(engine.metrics().uptime_s, 12.5);
    clock.set(Duration::from_secs(100));
    assert_eq!(engine.metrics().uptime_s, 0.0);
}

#[test]
fn sharded_runs_populate_shard_health_and_the_imbalance_gauge() {
    let (reference, query) = test_pair(9_004);
    let sink = Arc::new(MemoryEventSink::new());
    let engine = Engine::builder(reference)
        .config(test_config())
        .spec(DeviceSpec::test_tiny())
        .event_sink(Arc::clone(&sink) as Arc<dyn EventSink>)
        .build()
        .unwrap();

    let fresh = engine.metrics().shards;
    assert_eq!(fresh.sharded_runs, 0);
    assert_eq!(fresh.imbalance, 0.0, "zeroed before any sharded run");

    let options = RunOptions {
        shards: 2,
        ..RunOptions::default()
    };
    engine
        .execute(&RunRequest::query(&query).options(options))
        .pop()
        .unwrap()
        .unwrap();

    let shards = engine.metrics().shards;
    assert_eq!(shards.sharded_runs, 1);
    assert_eq!(shards.shards, 2);
    assert_eq!(shards.last_modeled_s.len(), 2);
    assert!(shards.max_modeled_s >= shards.mean_modeled_s);
    assert!(shards.imbalance >= 1.0);

    let dispatches = sink.of_kind("shard_dispatch");
    assert_eq!(dispatches.len(), 2, "one dispatch event per shard");
    let rows: u64 = dispatches
        .iter()
        .map(|d| d.u64_field("rows").unwrap())
        .sum();
    assert_eq!(
        rows as usize,
        engine.session().rows(),
        "dispatch covers all rows"
    );

    let text = telemetry::render_prometheus(&engine.metrics());
    assert!(text.contains("gpumem_shard_imbalance"));
    assert!(text.contains("gpumem_shard_modeled_seconds{shard=\"1\"}"));
}

#[test]
fn registry_journals_pin_unpin_and_evictions() {
    let spec = DeviceSpec::test_tiny();
    let config = test_config();
    let device = Device::new(spec.clone());
    let references: Vec<Arc<PackedSeq>> = (0..3)
        .map(|i| Arc::new(GenomeModel::mammalian().generate(4_000, 700 + i)))
        .collect();

    // Size the budget to hold one warmed reference, so touching the
    // others must evict.
    let probe = Registry::new(spec.clone());
    let handle = probe
        .add("probe", Arc::clone(&references[0]), config.clone())
        .unwrap();
    probe.session(handle).unwrap().warm(&device);
    let per_ref = probe.resident_bytes();
    assert!(per_ref > 0);

    let sink = Arc::new(MemoryEventSink::new());
    let registry = Arc::new(Registry::with_budget(spec, per_ref + per_ref / 2));
    registry.set_event_sink(Some(Arc::clone(&sink) as Arc<dyn EventSink>));
    let handles: Vec<_> = references
        .iter()
        .enumerate()
        .map(|(i, r)| {
            registry
                .add(&format!("ref{i}"), Arc::clone(r), config.clone())
                .unwrap()
        })
        .collect();

    let pinned = registry.pin(handles[0]).unwrap();
    for &handle in &handles[1..] {
        registry.session(handle).unwrap().warm(&device);
        registry.touch(handle);
    }
    drop(pinned);

    let stats = registry.stats();
    assert!(stats.evictions > 0, "budget churn must evict: {stats:?}");
    let evicts = sink.of_kind("evict");
    assert_eq!(
        evicts.len() as u64,
        stats.evictions,
        "one event per eviction"
    );
    for evict in &evicts {
        assert!(evict.u64_field("freed_bytes").unwrap() > 0);
    }
    let pins = sink.of_kind("pin");
    assert_eq!(pins.len(), 1);
    assert_eq!(pins[0].u64_field("pins"), Some(1));
    assert_eq!(sink.of_kind("unpin").len(), 1);
}

#[test]
fn jsonl_sink_writes_one_parseable_line_per_event() {
    let dir = std::env::temp_dir().join("gpumem-telemetry-jsonl");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("events.jsonl");
    let (reference, query) = test_pair(9_005);
    {
        let sink = Arc::new(gpumem::JsonlEventSink::create(path.to_str().unwrap()).unwrap());
        let engine = Engine::builder(reference)
            .config(test_config())
            .spec(DeviceSpec::test_tiny())
            .event_sink(sink as Arc<dyn EventSink>)
            .build()
            .unwrap();
        engine.run(&query).unwrap();
    }

    let journal = std::fs::read_to_string(&path).unwrap();
    let mut kinds = Vec::new();
    for line in journal.lines() {
        let event = parse(line).unwrap_or_else(|e| panic!("bad journal line {line:?}: {e}"));
        assert!(event.get("ts_s").unwrap().as_f64().is_some());
        kinds.push(event.get("event").unwrap().as_str().unwrap().to_string());
    }
    for expected in ["run_start", "index_build", "run_end"] {
        assert!(kinds.iter().any(|k| k == expected), "no {expected} event");
    }
}

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_gpumem-cli"))
}

fn write_pair(dir: &std::path::Path) -> (String, String) {
    let (reference, query) = test_pair(9_006);
    let write = |name: &str, seq: &PackedSeq| -> String {
        let path = dir.join(name);
        let mut file = std::fs::File::create(&path).unwrap();
        write_fasta(
            &mut file,
            &[FastaRecord {
                header: name.into(),
                seq: seq.clone(),
            }],
        )
        .unwrap();
        file.flush().unwrap();
        path.to_str().unwrap().to_string()
    };
    (write("ref.fa", &reference), write("query.fa", &query))
}

#[test]
fn cli_metrics_export_emits_both_formats_and_a_journal() {
    let dir = std::env::temp_dir().join("gpumem-telemetry-cli");
    std::fs::create_dir_all(&dir).unwrap();
    let (ref_fa, query_fa) = write_pair(&dir);
    let journal = dir.join("events.jsonl");

    let prom = cli()
        .args([
            "metrics",
            "export",
            "--min-len",
            "20",
            "--seed-len",
            "6",
            "--shards",
            "2",
            "--journal",
            journal.to_str().unwrap(),
            &ref_fa,
            &query_fa,
        ])
        .output()
        .expect("binary runs");
    assert!(
        prom.status.success(),
        "metrics export failed: {}",
        String::from_utf8_lossy(&prom.stderr)
    );
    let text = String::from_utf8(prom.stdout).unwrap();
    for family in FAMILIES {
        assert!(
            text.contains(&format!("# TYPE {family} ")),
            "scrape output missing {family}"
        );
    }
    // The sharded run surfaced in the scrape.
    assert!(text.contains("gpumem_sharded_runs_total 1"));

    let journal_text = std::fs::read_to_string(&journal).unwrap();
    assert!(!journal_text.is_empty());
    for line in journal_text.lines() {
        parse(line).unwrap_or_else(|e| panic!("bad journal line {line:?}: {e}"));
    }
    assert!(journal_text.contains("\"event\":\"run_end\""));
    assert!(journal_text.contains("\"event\":\"shard_dispatch\""));

    let json = cli()
        .args([
            "metrics",
            "export",
            "--format",
            "json",
            "--min-len",
            "20",
            "--seed-len",
            "6",
            "--shards",
            "2",
            &ref_fa,
            &query_fa,
        ])
        .output()
        .expect("binary runs");
    assert!(json.status.success());
    let doc = parse(&String::from_utf8(json.stdout).unwrap()).expect("valid JSON exposition");
    let metrics = doc.get("metrics").unwrap().as_array().unwrap();
    assert_eq!(metrics.len(), FAMILIES.len());
}

#[test]
fn cli_bench_check_gates_the_recorded_trajectory() {
    let dir = std::env::temp_dir().join("gpumem-telemetry-bench-check");
    std::fs::create_dir_all(&dir).unwrap();
    let history = dir.join("history.jsonl");
    let entry = |wall: f64, qps: f64| {
        format!(
            "{{\"ts\":1,\"wall_s\":{wall},\"match_wall_s\":0.2,\"qps_batch\":{qps},\
             \"seedmode_l300_modeled_ratio\":4.0,\"skewed_modeled_ratio\":1.0,\
             \"sharded_modeled_ratio\":3.5,\"mems\":41040}}"
        )
    };
    let check = |history: &std::path::Path| {
        cli()
            .args([
                "bench-info",
                "--check",
                "--history",
                history.to_str().unwrap(),
            ])
            .output()
            .expect("binary runs")
    };

    // Within tolerance of the best recorded entry: pass.
    std::fs::write(
        &history,
        format!("{}\n{}\n", entry(1.0, 50.0), entry(1.1, 46.0)),
    )
    .unwrap();
    let ok = check(&history);
    assert!(
        ok.status.success(),
        "in-tolerance trajectory must pass: {}",
        String::from_utf8_lossy(&ok.stderr)
    );

    // A >20% wall-clock regression in the latest entry: fail.
    std::fs::write(
        &history,
        format!("{}\n{}\n", entry(1.0, 50.0), entry(1.3, 50.0)),
    )
    .unwrap();
    let bad = check(&history);
    assert!(!bad.status.success(), "regression must fail the check");
    let stderr = String::from_utf8(bad.stderr).unwrap();
    assert!(stderr.contains("regression"), "got: {stderr}");

    // A missing trajectory is a skip, not a failure (fresh checkout).
    let none = check(&dir.join("absent.jsonl"));
    assert!(none.status.success(), "missing history must not fail");
}
