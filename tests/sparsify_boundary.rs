//! Eq. 1 end to end: at the default (maximal) sparsification step
//! `Δs = L − ℓs + 1`, a MEM of length *exactly* `L` — the worst case
//! the sparsified index is still obligated to cover — is found no
//! matter where it lands relative to the sample grid.

use gpumem::core::{Gpumem, GpumemConfig, IndexKind};
use gpumem::seq::{GenomeModel, Mem, PackedSeq};
use gpumem::sim::{Device, DeviceSpec};
use proptest::prelude::*;

/// Overwrite `background[at..at + segment.len()]` with `segment` and
/// pin the flanking characters so a match over the segment cannot
/// extend past either end.
fn splice(background: &mut [u8], at: usize, segment: &[u8], flank_before: u8, flank_after: u8) {
    background[at..at + segment.len()].copy_from_slice(segment);
    if at > 0 {
        background[at - 1] = flank_before;
    }
    let end = at + segment.len();
    if end < background.len() {
        background[end] = flank_after;
    }
}

/// A reference/query pair sharing one segment of length exactly `l` at
/// `(ref_at, query_at)`, with mismatching flanks on both sides in both
/// sequences so the planted MEM is `(ref_at, query_at, l)` precisely.
fn planted_pair(
    l: usize,
    ref_at: usize,
    query_at: usize,
    content_seed: u64,
) -> (PackedSeq, PackedSeq) {
    let shared = GenomeModel::uniform().generate(l, content_seed).to_codes();
    let mut reference = GenomeModel::uniform()
        .generate(ref_at + l + 200, content_seed.wrapping_add(1))
        .to_codes();
    let mut query = GenomeModel::uniform()
        .generate(query_at + l + 200, content_seed.wrapping_add(2))
        .to_codes();
    // Codes 0..4 are the four bases; distinct flank codes on each side
    // guarantee the match stops exactly at the segment boundary.
    splice(&mut reference, ref_at, &shared, 0, 2);
    splice(&mut query, query_at, &shared, 1, 3);
    (
        PackedSeq::from_codes(&reference),
        PackedSeq::from_codes(&query),
    )
}

fn run_at_max_step(
    min_len: u32,
    seed_len: usize,
    index_kind: IndexKind,
    reference: &PackedSeq,
    query: &PackedSeq,
) -> Vec<Mem> {
    // `GpumemConfig` defaults the step to Eq. 1's maximum. The small
    // tile geometry keeps the padded tail of the short test queries
    // (the query is processed in tiles of `step · τ · β` locations)
    // from dominating the runtime.
    let config = GpumemConfig::builder(min_len)
        .seed_len(seed_len)
        .threads_per_block(32)
        .blocks_per_tile(2)
        .index_kind(index_kind)
        .build()
        .expect("valid config");
    assert_eq!(
        config.step,
        min_len as usize - seed_len + 1,
        "default step must be the Eq. 1 maximum"
    );
    let gpumem = Gpumem::with_device(config, Device::new(DeviceSpec::test_tiny()));
    gpumem.run(reference, query).unwrap().mems
}

/// Sweep the planted MEM across every alignment class relative to the
/// sample grid for the paper's (L = 50, ℓs = 13) configuration: the
/// residue of the MEM start modulo Δs decides which sampled seed must
/// cover it. The compact directory keeps the index proportional to the
/// sampled locations — the dense 4^13-entry table would swamp this
/// test with simulated table scans.
#[test]
fn exact_length_l_mem_found_at_every_alignment_paper_config() {
    let (min_len, seed_len) = (50u32, 13usize);
    let step = min_len as usize - seed_len + 1; // 38
    for residue in [0, 1, step / 2, step - 2, step - 1] {
        let ref_at = 97 + residue;
        let query_at = 61;
        let (reference, query) =
            planted_pair(min_len as usize, ref_at, query_at, 40 + residue as u64);
        let mems = run_at_max_step(
            min_len,
            seed_len,
            IndexKind::CompactDirectory,
            &reference,
            &query,
        );
        let planted = Mem {
            r: ref_at as u32,
            q: query_at as u32,
            len: min_len,
        };
        assert!(
            mems.contains(&planted),
            "planted MEM {planted:?} (start residue {} mod Δs={step}) missing from {mems:?}",
            ref_at % step
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random (L, ℓs, placement) under the default dense table: the
    /// length-exactly-L MEM survives maximal sparsification wherever
    /// it lands. `ℓs` stays below 10 so the dense 4^ℓs directory stays
    /// small enough to simulate quickly.
    #[test]
    fn exact_length_l_mem_found_at_max_step(
        min_len in 25u32..60,
        seed_len in 4usize..10,
        ref_at in 1usize..300,
        query_at in 1usize..300,
        content_seed in 0u64..1_000,
    ) {
        let (reference, query) = planted_pair(min_len as usize, ref_at, query_at, content_seed);
        let mems = run_at_max_step(min_len, seed_len, IndexKind::DenseTable, &reference, &query);
        let planted = Mem {
            r: ref_at as u32,
            q: query_at as u32,
            len: min_len,
        };
        prop_assert!(
            mems.contains(&planted),
            "planted MEM {:?} missing (L = {}, ls = {}): {:?}",
            planted, min_len, seed_len, mems
        );
    }
}
