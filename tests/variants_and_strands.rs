//! Integration of the §V future-work features across crates: GPUMEM's
//! pipeline feeding the MUM/rare filters, both-strand matching, and
//! the compact index layout.

use gpumem::baselines::{find_mems_both_strands, is_strand_mem_exact, Mummer, VariantFilter};
use gpumem::core::{Gpumem, GpumemConfig, IndexKind};
use gpumem::seq::{table2_pairs, Strand};
use gpumem::sim::{Device, DeviceSpec};

fn tiny(config: GpumemConfig) -> Gpumem {
    Gpumem::with_device(config, Device::new(DeviceSpec::test_tiny()))
}

#[test]
fn gpumem_mems_feed_the_variant_filter() {
    let pair = table2_pairs(1.0 / 32768.0)[1].realize(2001);
    let config = GpumemConfig::builder(18)
        .seed_len(8)
        .threads_per_block(16)
        .blocks_per_tile(2)
        .build()
        .unwrap();
    let mems = tiny(config).run(&pair.reference, &pair.query).unwrap().mems;
    assert!(!mems.is_empty());

    let filter = VariantFilter::new(&pair.reference, &pair.query);
    let mums = filter.unique_matches(&mems);
    // Every MUM occurs exactly once on each side by definition.
    for mem in &mums {
        assert_eq!(
            filter.count_in_reference(mem.r as usize, mem.len as usize),
            1
        );
        assert_eq!(filter.count_in_query(mem.r as usize, mem.len as usize), 1);
    }
    // And every non-MUM MEM is over-represented somewhere.
    for mem in mems.iter().filter(|m| !mums.contains(m)) {
        let (r, len) = (mem.r as usize, mem.len as usize);
        assert!(
            filter.count_in_reference(r, len) > 1 || filter.count_in_query(r, len) > 1,
            "{mem:?} was filtered but is unique"
        );
    }
}

#[test]
fn gpumem_both_strand_runs_match_baseline_both_strand_runs() {
    let pair = table2_pairs(1.0 / 65536.0)[3].realize(2002);
    let min_len = 14;

    // Baseline both-strand result.
    let mummer = Mummer::build(&pair.reference);
    let expect = find_mems_both_strands(&mummer, &pair.query, min_len, 1);
    for &hit in &expect {
        assert!(is_strand_mem_exact(
            &pair.reference,
            &pair.query,
            hit,
            min_len
        ));
    }

    // GPUMEM forward + reverse-complement runs produce the same set.
    let config = GpumemConfig::builder(min_len)
        .seed_len(7)
        .threads_per_block(16)
        .blocks_per_tile(2)
        .build()
        .unwrap();
    let gpumem = tiny(config);
    let forward = gpumem.run(&pair.reference, &pair.query).unwrap().mems;
    let rc = pair.query.reverse_complement();
    let reverse: Vec<_> = gpumem
        .run(&pair.reference, &rc)
        .unwrap()
        .mems
        .into_iter()
        .map(|m| gpumem::seq::map_reverse_mem(m, pair.query.len()))
        .collect();

    let expect_forward: Vec<_> = expect
        .iter()
        .filter(|h| h.strand == Strand::Forward)
        .map(|h| h.mem)
        .collect();
    let mut expect_reverse: Vec<_> = expect
        .iter()
        .filter(|h| h.strand == Strand::Reverse)
        .map(|h| h.mem)
        .collect();
    expect_reverse.sort_unstable();
    let mut reverse_sorted = reverse;
    reverse_sorted.sort_unstable();
    assert_eq!(forward, expect_forward);
    assert_eq!(reverse_sorted, expect_reverse);
}

#[test]
fn compact_index_agrees_end_to_end() {
    let pair = table2_pairs(1.0 / 65536.0)[0].realize(2003);
    let run = |kind: IndexKind| {
        let config = GpumemConfig::builder(15)
            .seed_len(7)
            .threads_per_block(16)
            .blocks_per_tile(2)
            .index_kind(kind)
            .build()
            .unwrap();
        tiny(config).run(&pair.reference, &pair.query).unwrap()
    };
    let dense = run(IndexKind::DenseTable);
    let compact = run(IndexKind::CompactDirectory);
    assert_eq!(dense.mems, compact.mems);
    assert_eq!(
        dense.mems,
        gpumem::seq::naive_mems(&pair.reference, &pair.query, 15)
    );
}
