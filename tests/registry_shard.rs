//! Registry + sharding invariants end to end: splitting a run's tile
//! rows across N simulated devices is a pure throughput knob — the
//! canonical MEM set must be byte-identical for every shard count,
//! every explicit row placement, and every combination with the other
//! per-request knobs. The registry's byte budget must hold under
//! arbitrary access churn, and pinned sessions must never be evicted.

use std::sync::Arc;

use gpumem::seq::{GenomeModel, MutationModel, PackedSeq};
use gpumem::sim::{Device, DeviceSpec};
use gpumem::{
    Engine, GpumemConfig, Registry, RunOptions, RunRequest, SchedulePolicy, SeedMode, ShardPlan,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A related pair with a planted poly-C desert so tile-row masses are
/// heavily skewed — the load imbalance sharding has to survive.
fn skewed_pair(content_seed: u64) -> (PackedSeq, PackedSeq) {
    let mut codes = GenomeModel::mammalian()
        .generate(3_000, content_seed)
        .to_codes();
    for slot in codes[800..1_300].iter_mut() {
        *slot = 1;
    }
    let reference = PackedSeq::from_codes(&codes);
    let query = {
        let model = MutationModel {
            sub_rate: 0.03,
            indel_rate: 0.003,
        };
        let mut rng = StdRng::seed_from_u64(content_seed.wrapping_add(13));
        PackedSeq::from_codes(&model.apply(&codes, &mut rng))
    };
    (reference, query)
}

fn engine_for(reference: PackedSeq) -> Engine {
    let config = GpumemConfig::builder(20)
        .seed_len(6)
        .threads_per_block(32)
        .blocks_per_tile(2)
        .build()
        .expect("valid config");
    Engine::builder(reference)
        .config(config)
        .spec(DeviceSpec::test_tiny())
        .build()
        .expect("engine builds")
}

fn sharded_mems(engine: &Engine, query: &PackedSeq, options: RunOptions) -> Vec<gpumem::seq::Mem> {
    engine
        .execute(&RunRequest::query(query).options(options))
        .pop()
        .expect("one result per query")
        .expect("run succeeds")
        .result
        .mems
}

#[test]
fn shard_count_invariance_one_two_four_seven() {
    let (reference, query) = skewed_pair(31_001);
    let engine = engine_for(reference);
    let single = engine.run(&query).unwrap();
    assert!(!single.mems.is_empty(), "fixture must produce MEMs");
    for shards in [1usize, 2, 4, 7] {
        let options = RunOptions {
            shards,
            ..RunOptions::default()
        };
        assert_eq!(
            sharded_mems(&engine, &query, options),
            single.mems,
            "{shards} shards"
        );
    }
}

#[test]
fn uniform_and_skewed_explicit_plans_are_byte_identical() {
    let (reference, query) = skewed_pair(31_002);
    let engine = engine_for(reference);
    let single = engine.run(&query).unwrap().mems;
    let n_rows = engine.session().rows();
    assert!(n_rows >= 2, "fixture must span several tile rows");

    // A balanced split, an LPT split over heavily skewed masses, and a
    // pathological placement (everything on shard 2 of 3) all agree.
    let skewed_masses: Vec<u64> = (0..n_rows).map(|r| ((r as u64) + 1).pow(3)).collect();
    let lopsided = ShardPlan::from_assignments(vec![Vec::new(), (0..n_rows).collect(), Vec::new()]);
    for (what, plan) in [
        ("uniform", ShardPlan::uniform(3, n_rows)),
        ("lpt-skewed", ShardPlan::from_row_masses(3, &skewed_masses)),
        ("lopsided", lopsided),
    ] {
        let options = RunOptions {
            shard_plan: Some(plan),
            ..RunOptions::default()
        };
        assert_eq!(sharded_mems(&engine, &query, options), single, "{what}");
    }
}

#[test]
fn knob_matrix_times_shards_is_byte_identical() {
    let (reference, query) = skewed_pair(31_003);
    let engine = engine_for(reference);
    let expect = engine.run(&query).unwrap().mems;
    assert!(!expect.is_empty(), "fixture must produce MEMs");
    // k1·k2 = 12 ≤ L − ℓs + 1 = 15 and gcd(4, 3) = 1: a valid dual grid
    // for the base (min_len 20, seed_len 6) configuration.
    let dual = SeedMode::DualSampled { k1: 4, k2: 3 };
    for shards in [2usize, 4] {
        for policy in [SchedulePolicy::InOrder, SchedulePolicy::MassDescending] {
            for seed_mode in [None, Some(dual)] {
                let options = RunOptions {
                    shards,
                    schedule_policy: Some(policy),
                    work_stealing: Some(true),
                    query_staging: Some(true),
                    seed_mode,
                    ..RunOptions::default()
                };
                assert_eq!(
                    sharded_mems(&engine, &query, options),
                    expect,
                    "shards={shards} policy={policy:?} seed_mode={seed_mode:?}"
                );
            }
        }
    }
}

#[test]
fn budget_holds_under_churn_and_pinned_sessions_survive() {
    let spec = DeviceSpec::test_tiny();
    let config = GpumemConfig::builder(20)
        .seed_len(6)
        .threads_per_block(32)
        .blocks_per_tile(2)
        .build()
        .unwrap();
    let references: Vec<Arc<PackedSeq>> = (0..5)
        .map(|i| Arc::new(GenomeModel::mammalian().generate(4_000, 500 + i)))
        .collect();
    let device = Device::new(spec.clone());

    // Probe one warmed reference's footprint so the budget is sized to
    // hold roughly two of the five.
    let probe = Registry::new(spec.clone());
    let handle = probe
        .add("probe", Arc::clone(&references[0]), config.clone())
        .unwrap();
    probe.session(handle).unwrap().warm(&device);
    let per_ref = probe.resident_bytes();
    assert!(per_ref > 0, "warmed index must have a footprint");
    let budget = per_ref * 2 + per_ref / 2;

    let registry = Arc::new(Registry::with_budget(spec, budget));
    let handles: Vec<_> = references
        .iter()
        .enumerate()
        .map(|(i, r)| {
            registry
                .add(&format!("ref{i}"), Arc::clone(r), config.clone())
                .unwrap()
        })
        .collect();
    let pinned = registry.pin(handles[0]).unwrap();
    pinned.session().warm(&device);
    registry.touch(handles[0]);
    let pinned_resident = pinned.session().resident_bytes();
    assert!(pinned_resident > 0);

    let mut rng = StdRng::seed_from_u64(42);
    for step in 0..60 {
        let pick = rng.gen_range(0..handles.len());
        let session = registry.session(handles[pick]).unwrap();
        session.warm(&device);
        registry.touch(handles[pick]);
        assert!(
            registry.resident_bytes() <= budget,
            "step {step}: resident {} exceeds budget {budget}",
            registry.resident_bytes()
        );
        assert_eq!(
            pinned.session().resident_bytes(),
            pinned_resident,
            "step {step}: pinned session lost rows"
        );
    }

    let stats = registry.stats();
    assert_eq!(stats.references, 5);
    assert_eq!(stats.pinned, 1);
    assert!(stats.evictions > 0, "churn must evict: {stats:?}");
    assert!(stats.hits > 0);
    // The peak is a high-water mark: it may transiently exceed the
    // budget (lazy builds land before the next touch enforces), but it
    // can never be below what is resident right now.
    assert!(stats.peak_resident_bytes >= registry.resident_bytes());

    // While pinned the entry cannot be removed; dropping the pin frees it.
    assert!(!registry.remove(handles[0]));
    drop(pinned);
    assert!(registry.remove(handles[0]));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any placement of the tile rows onto any number of shards — drawn
    /// at random, from empty to badly unbalanced — reproduces the
    /// single-device canonical MEM set byte for byte.
    #[test]
    fn random_row_placements_reproduce_single_device_mems(
        content_seed in 0u64..500,
        split_seed in 0u64..10_000,
    ) {
        let (reference, query) = skewed_pair(content_seed);
        let engine = engine_for(reference);
        let single = engine.run(&query).unwrap().mems;
        let n_rows = engine.session().rows();

        let mut rng = StdRng::seed_from_u64(split_seed);
        let n_shards = rng.gen_range(2..=7usize);
        let mut rows: Vec<Vec<usize>> = vec![Vec::new(); n_shards];
        for row in 0..n_rows {
            let shard = rng.gen_range(0..n_shards);
            rows[shard].push(row);
        }
        let options = RunOptions {
            shard_plan: Some(ShardPlan::from_assignments(rows)),
            ..RunOptions::default()
        };
        prop_assert_eq!(
            sharded_mems(&engine, &query, options),
            single,
            "{} shards, split seed {}", n_shards, split_seed
        );
    }
}
