//! The facade crate's public API: everything a downstream user needs is
//! reachable through `gpumem::*`.

use gpumem::baselines::MemFinder;
use gpumem::core::{Gpumem, GpumemConfig};
use gpumem::index::{build_sequential, max_step, Region};
use gpumem::seq::{is_maximal_exact, PackedSeq};
use gpumem::sim::{Device, DeviceSpec, LaunchConfig};

#[test]
fn end_to_end_through_the_facade() {
    let reference: PackedSeq = "ACGTACGTACGTGGGGACGTACGTACGT".parse().unwrap();
    let query: PackedSeq = "TTTTACGTACGTACGTCCCC".parse().unwrap();
    let config = GpumemConfig::builder(8).seed_len(4).build().unwrap();
    let result = Gpumem::new(config).run(&reference, &query).unwrap();
    assert!(!result.mems.is_empty());
    for &mem in &result.mems {
        assert!(is_maximal_exact(&reference, &query, mem, 8));
    }
}

#[test]
fn baselines_are_usable_directly() {
    let reference: PackedSeq = "ACGTACGTACGTGGGG".parse().unwrap();
    let query: PackedSeq = "CCACGTACGTACC".parse().unwrap();
    let finder = gpumem::baselines::Mummer::build(&reference);
    let mems = finder.find_mems(&query, 8);
    // The periodic prefix matches at two reference offsets: a 10-mer at
    // r=0 and an 8-mer at r=4.
    assert_eq!(mems.len(), 2);
    assert!(mems.contains(&gpumem::seq::Mem {
        r: 0,
        q: 2,
        len: 10
    }));
    assert_eq!(finder.name(), "MUMmer");
}

#[test]
fn index_and_eq1_are_exposed() {
    assert_eq!(max_step(50, 13), 38);
    let seq: PackedSeq = "ACACACACAC".parse().unwrap();
    let index = build_sequential(&seq, Region::whole(&seq), 2, 1);
    index.validate(&seq).unwrap();
    assert_eq!(index.occurrences(0b01_00), 5, "AC occurs five times");
}

#[test]
fn serving_api_is_exposed_at_the_root() {
    use gpumem::seq::{FastaRecord, SeqSet};
    use gpumem::{Engine, GpumemConfig, IndexBuildReport, MemCollector, MemSink, MemStage};

    let reference: PackedSeq = "ACGTACGTACGTGGGGACGTACGTACGT".parse().unwrap();
    let config = GpumemConfig::builder(8).seed_len(4).build().unwrap();
    let engine = Engine::builder(reference).config(config).build().unwrap();

    let report: IndexBuildReport = engine.warm();
    assert_eq!(report.rows, engine.session().rows());

    let queries = SeqSet::from_records(&[
        FastaRecord {
            header: "q0".into(),
            seq: "TTTTACGTACGTACGTCCCC".parse().unwrap(),
        },
        FastaRecord {
            header: "q1".into(),
            seq: "GGGGACGTACGTAAAA".parse().unwrap(),
        },
    ]);
    let results = engine.run_batch(&queries);
    assert_eq!(results.len(), 2);
    for (i, result) in results.into_iter().enumerate() {
        let result = result.unwrap();
        assert_eq!(
            result.mems,
            engine.run(&queries.record_seq(i)).unwrap().mems
        );
        // Streaming into a collector reproduces the collected run.
        let mut sink = MemCollector::default();
        engine
            .run_with_sink(&queries.record_seq(i), &mut sink)
            .unwrap();
        assert_eq!(sink.into_canonical(), result.mems);
    }

    // MemSink is object-safe and implementable downstream.
    struct Count(usize);
    impl MemSink for Count {
        fn mems(&mut self, _stage: MemStage, mems: &[gpumem::seq::Mem]) {
            self.0 += mems.len();
        }
    }
    let mut count = Count(0);
    engine
        .run_with_sink(&queries.record_seq(0), &mut count)
        .unwrap();
    assert!(count.0 > 0);
}

#[test]
fn registry_and_request_api_are_exposed_at_the_root() {
    use gpumem::sim::DeviceSpec;
    use gpumem::{Engine, GpumemConfig, Registry, RunOptions, RunRequest, ShardPlan};
    use std::sync::Arc;

    let reference: PackedSeq = "ACGTACGTACGTGGGGACGTACGTACGT".parse().unwrap();
    let config = GpumemConfig::builder(8).seed_len(4).build().unwrap();
    let registry = Arc::new(Registry::with_budget(DeviceSpec::test_tiny(), 1 << 30));
    let engine = Engine::builder(reference)
        .config(config)
        .registry(Arc::clone(&registry))
        .name("facade")
        .build()
        .unwrap();
    assert_eq!(registry.len(), 1);
    assert!(registry.handle_by_name("facade").is_some());

    let query: PackedSeq = "TTTTACGTACGTACGTCCCC".parse().unwrap();
    let plain = engine.run(&query).unwrap();
    let options = RunOptions {
        shards: 2,
        ..RunOptions::default()
    };
    let out = engine
        .execute(&RunRequest::query(&query).options(options))
        .pop()
        .unwrap()
        .unwrap();
    assert_eq!(out.result.mems, plain.mems);

    let plan = ShardPlan::uniform(2, 8);
    assert_eq!(plan.n_shards(), 2);
    let stats = engine.metrics().registry;
    assert!(stats.attached);
    assert_eq!(stats.references, 1);
}

#[test]
fn simulator_is_exposed() {
    let device = Device::new(DeviceSpec::test_tiny());
    let counter = gpumem::sim::GpuU32::new(1);
    device.launch_fn(LaunchConfig::new(2, 32), |ctx| {
        ctx.simt(|lane| {
            lane.atomic_add32(&counter, 0, 1);
        });
    });
    assert_eq!(counter.load(0), 64);
}
