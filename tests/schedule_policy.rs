//! Locality/balance knob invariance end to end: the schedule policy,
//! the persistent-block steal queue, and shared-memory query staging
//! are pure performance knobs — every combination must produce the
//! byte-identical canonical MEM set, and reordering tile launches must
//! leave every modeled device total unchanged (the same launches run,
//! in a different order).

use gpumem::core::{schedule, Gpumem, GpumemConfig, SchedulePolicy};
use gpumem::seq::{naive_mems, GenomeModel, MutationModel, PackedSeq};
use gpumem::sim::{Device, DeviceSpec};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A related pair with a planted repeat desert: a poly-C block in the
/// reference makes one seed code own hundreds of locations, the load
/// skew that work stealing exists for.
fn skewed_pair(content_seed: u64) -> (PackedSeq, PackedSeq) {
    let mut codes = GenomeModel::mammalian()
        .generate(3_000, content_seed)
        .to_codes();
    for slot in codes[800..1_300].iter_mut() {
        *slot = 1;
    }
    let reference = PackedSeq::from_codes(&codes);
    let query = {
        let model = MutationModel {
            sub_rate: 0.03,
            indel_rate: 0.003,
        };
        let mut rng = StdRng::seed_from_u64(content_seed.wrapping_add(13));
        PackedSeq::from_codes(&model.apply(&codes, &mut rng))
    };
    (reference, query)
}

fn knobbed(min_len: u32, policy: SchedulePolicy, stealing: bool, staging: bool) -> Gpumem {
    let config = GpumemConfig::builder(min_len)
        .seed_len(6)
        .threads_per_block(32)
        .blocks_per_tile(2)
        .schedule_policy(policy)
        .work_stealing(stealing)
        .query_staging(staging)
        .build()
        .expect("valid config");
    Gpumem::with_device(config, Device::new(DeviceSpec::test_tiny()))
}

#[test]
fn every_knob_combination_reproduces_the_canonical_mem_set() {
    let (reference, query) = skewed_pair(7_001);
    let expect = naive_mems(&reference, &query, 20);
    assert!(!expect.is_empty(), "fixture must produce MEMs");
    for policy in [SchedulePolicy::InOrder, SchedulePolicy::MassDescending] {
        for stealing in [false, true] {
            for staging in [false, true] {
                let result = knobbed(20, policy, stealing, staging)
                    .run(&reference, &query)
                    .unwrap();
                assert_eq!(
                    result.mems, expect,
                    "{policy:?}/stealing={stealing}/staging={staging}"
                );
                if stealing {
                    assert!(
                        result.stats.matching.steal_events > 0,
                        "{policy:?}/staging={staging}: skewed run must steal"
                    );
                }
            }
        }
    }
}

#[test]
fn tile_reordering_changes_no_modeled_total() {
    // MassDescending is a data-driven permutation of the same launches:
    // every counter that sums over launches must match InOrder exactly.
    let (reference, query) = skewed_pair(7_002);
    let a = knobbed(20, SchedulePolicy::InOrder, false, false)
        .run(&reference, &query)
        .unwrap();
    let b = knobbed(20, SchedulePolicy::MassDescending, false, false)
        .run(&reference, &query)
        .unwrap();
    assert_eq!(a.mems, b.mems);
    for (x, y, what) in [
        (&a.stats.index, &b.stats.index, "index"),
        (&a.stats.matching, &b.stats.matching, "matching"),
    ] {
        assert_eq!(x.launches, y.launches, "{what} launches");
        assert_eq!(x.blocks, y.blocks, "{what} blocks");
        assert_eq!(x.warps, y.warps, "{what} warps");
        assert_eq!(x.warp_cycles, y.warp_cycles, "{what} warp cycles");
        assert_eq!(x.lane_cycles, y.lane_cycles, "{what} lane cycles");
        assert_eq!(x.device_cycles, y.device_cycles, "{what} device cycles");
        assert_eq!(
            x.divergence_events, y.divergence_events,
            "{what} divergence"
        );
        assert_eq!(x.atomic_ops, y.atomic_ops, "{what} atomics");
        assert_eq!(x.global_mem_ops, y.global_mem_ops, "{what} global ops");
        assert_eq!(x.comparisons, y.comparisons, "{what} comparisons");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random related pairs, random knob combination: the MEM set
    /// equals both the default-config run and the ground truth.
    #[test]
    fn random_knob_combination_equals_default_and_naive(
        content_seed in 0u64..1_000,
        knobs in 0u8..8,
    ) {
        let (mass, stealing, staging) =
            (knobs & 1 != 0, knobs & 2 != 0, knobs & 4 != 0);
        let policy = if mass {
            SchedulePolicy::MassDescending
        } else {
            SchedulePolicy::InOrder
        };
        let (reference, query) = skewed_pair(content_seed);
        let default = knobbed(22, SchedulePolicy::InOrder, false, false)
            .run(&reference, &query)
            .unwrap()
            .mems;
        let got = knobbed(22, policy, stealing, staging)
            .run(&reference, &query)
            .unwrap()
            .mems;
        prop_assert_eq!(&got, &default, "knobs = {:03b}", knobs);
        prop_assert_eq!(got, naive_mems(&reference, &query, 22));
    }

    /// Any mass vector yields a valid launch permutation: every tile is
    /// visited exactly once regardless of how skewed the sampled
    /// occurrence masses are.
    #[test]
    fn descending_order_is_always_a_permutation(
        masses in proptest::collection::vec(0u64..1_000_000, 1..64),
    ) {
        let order = schedule::descending(&masses);
        let mut seen = vec![false; masses.len()];
        for &i in &order {
            prop_assert!(!seen[i], "tile {} scheduled twice", i);
            seen[i] = true;
        }
        prop_assert!(seen.iter().all(|&s| s), "some tile never scheduled");
        for pair in order.windows(2) {
            prop_assert!(masses[pair[0]] >= masses[pair[1]], "not descending");
        }
    }
}
