//! Tests that pin the paper's *analytical* claims, beyond output
//! equality: the Eq. 1 sparsification guarantee at its boundary, exact
//! length thresholds, and corner cases of the 2-D search space.

use gpumem::core::{Gpumem, GpumemConfig};
use gpumem::seq::{naive_mems, GenomeModel, Mem, PackedSeq};
use gpumem::sim::{Device, DeviceSpec};

fn gpumem(min_len: u32, seed_len: usize) -> Gpumem {
    let config = GpumemConfig::builder(min_len)
        .seed_len(seed_len)
        .threads_per_block(8)
        .blocks_per_tile(2)
        .build()
        .unwrap();
    Gpumem::with_device(config, Device::new(DeviceSpec::test_tiny()))
}

/// Eq. 1 at the boundary: with the maximal step `Δs = L − ℓs + 1`, a
/// MEM of length *exactly* `L` must be found wherever it starts
/// relative to the sampling phase. Plant length-L matches at every
/// offset modulo Δs and verify none is missed.
#[test]
fn eq1_guarantee_holds_at_every_sampling_phase() {
    let (min_len, seed_len) = (24u32, 8usize);
    let tool = gpumem(min_len, seed_len);
    let step = tool.config().step;
    assert_eq!(step, 24 - 8 + 1, "maximal step in effect");

    // Background with no chance repeats (distinct blocks per position).
    let n = 4_000;
    let background: Vec<u8> = (0..n).map(|i| ((i / 3) % 4) as u8).collect();
    for phase in 0..step {
        let mut ref_codes = background.clone();
        // A length-L segment with high-entropy content planted so its
        // start lands on the wanted phase.
        let start = 100 + phase;
        let segment: Vec<u8> = (0..min_len as usize)
            .map(|i| ((i * 5 + i / 2 + 1) % 4) as u8)
            .collect();
        ref_codes[start..start + min_len as usize].copy_from_slice(&segment);
        let reference = PackedSeq::from_codes(&ref_codes);

        let mut q_codes: Vec<u8> = (0..600).map(|i| (3 - (i / 5) % 4) as u8).collect();
        q_codes[200..200 + min_len as usize].copy_from_slice(&segment);
        let query = PackedSeq::from_codes(&q_codes);

        let expect = naive_mems(&reference, &query, min_len);
        assert!(
            expect
                .iter()
                .any(|m| m.q <= 200 && m.q_end() >= 200 + min_len),
            "phase {phase}: planted MEM missing from ground truth"
        );
        let got = tool.run(&reference, &query).unwrap().mems;
        assert_eq!(got, expect, "phase {phase}");
    }
}

/// Matches one base short of `L` are rejected; exactly `L` is kept.
#[test]
fn length_threshold_is_exact() {
    let min_len = 16u32;
    let tool = gpumem(min_len, 8);
    let plant = |len: usize| -> (PackedSeq, PackedSeq) {
        let segment: Vec<u8> = (0..len).map(|i| ((i * 7 + 3) % 4) as u8).collect();
        let mut r: Vec<u8> = (0..800).map(|i| ((i / 2) % 4) as u8).collect();
        let mut q: Vec<u8> = (0..800).map(|i| (3 - (i / 7) % 4) as u8).collect();
        r[300..300 + len].copy_from_slice(&segment);
        q[100..100 + len].copy_from_slice(&segment);
        // Force mismatching flanks so the planted match is exactly
        // `len` long (periodic backgrounds can collide by accident).
        r[299] = 0;
        q[99] = 3;
        r[300 + len] = 1;
        q[100 + len] = 2;
        (PackedSeq::from_codes(&r), PackedSeq::from_codes(&q))
    };
    for len in [15usize, 16, 17] {
        let (reference, query) = plant(len);
        let expect = naive_mems(&reference, &query, min_len);
        let got = tool.run(&reference, &query).unwrap().mems;
        assert_eq!(got, expect, "len {len}");
        let planted_found = got
            .iter()
            .any(|m| m.r <= 300 && m.q <= 100 && m.len >= len.min(16) as u32);
        assert_eq!(planted_found, len >= 16, "len {len}");
    }
}

/// MEMs pinned to all four corners of the `|R| × |Q|` search space
/// survive the tiling (corner triplets touch two boundaries at once).
#[test]
fn corner_matches_survive() {
    let segment: Vec<u8> = (0..40).map(|i| ((i * 3 + 1) % 4) as u8).collect();
    let tool = gpumem(20, 8);
    let n = tool.config().tile_len() + 500; // force multiple tiles
    let mut r: Vec<u8> = (0..n).map(|i| ((i / 2) % 4) as u8).collect();
    let mut q: Vec<u8> = (0..n).map(|i| (3 - (i / 3) % 4) as u8).collect();
    // (0,0), (0,end), (end,0), (end,end).
    r[..40].copy_from_slice(&segment);
    q[..40].copy_from_slice(&segment);
    r[n - 40..].copy_from_slice(&segment);
    q[n - 40..].copy_from_slice(&segment);
    let reference = PackedSeq::from_codes(&r);
    let query = PackedSeq::from_codes(&q);

    let expect = naive_mems(&reference, &query, 20);
    for corner in [
        Mem {
            r: 0,
            q: 0,
            len: 40,
        },
        Mem {
            r: 0,
            q: (n - 40) as u32,
            len: 40,
        },
        Mem {
            r: (n - 40) as u32,
            q: 0,
            len: 40,
        },
        Mem {
            r: (n - 40) as u32,
            q: (n - 40) as u32,
            len: 40,
        },
    ] {
        assert!(
            expect.iter().any(|m| m.r <= corner.r
                && m.q <= corner.q
                && m.r_end() >= corner.r_end()
                && m.q_end() >= corner.q_end()),
            "corner {corner:?} missing from ground truth"
        );
    }
    assert_eq!(tool.run(&reference, &query).unwrap().mems, expect);
}

/// The paper's §III-B3 note "in practice GPUMEM just sets λ′ to zero":
/// deleted triplets must never leak into the output as zero-length or
/// stale MEMs.
#[test]
fn no_zero_length_or_duplicate_output() {
    let text = GenomeModel::mammalian().generate(5_000, 3003);
    let tool = gpumem(18, 8);
    let mems = tool.run(&text, &text).unwrap().mems;
    assert!(mems.iter().all(|m| m.len >= 18));
    let mut dedup = mems.clone();
    dedup.dedup();
    assert_eq!(dedup.len(), mems.len(), "output must be duplicate-free");
    // Canonical ordering (sorted) as documented.
    let mut sorted = mems.clone();
    sorted.sort_unstable();
    assert_eq!(sorted, mems);
}
