//! Tiling-boundary stress and determinism guarantees for the pipeline.

use gpumem::core::{Gpumem, GpumemConfig};
use gpumem::seq::{naive_mems, GenomeModel, Mem, PackedSeq};
use gpumem::sim::{Device, DeviceSpec};

fn tiny_gpumem(min_len: u32, seed_len: usize, tau: usize, n_block: usize) -> Gpumem {
    let config = GpumemConfig::builder(min_len)
        .seed_len(seed_len)
        .threads_per_block(tau)
        .blocks_per_tile(n_block)
        .build()
        .expect("valid config");
    Gpumem::with_device(config, Device::new(DeviceSpec::test_tiny()))
}

/// A MEM engineered to straddle block and tile boundaries: a long
/// shared segment planted across the boundary of the pipeline's tiling.
#[test]
fn planted_mems_across_boundaries_are_found_exactly() {
    let gpumem = tiny_gpumem(30, 8, 8, 2);
    let tile = gpumem.config().tile_len();
    // Reference/query long enough for > 2 tile rows/cols.
    let n = tile * 2 + tile / 2;
    let mut ref_codes: Vec<u8> = (0..n).map(|i| ((i * 2654435761) >> 7) as u8 & 3).collect();
    let mut query_codes: Vec<u8> = (0..n).map(|i| ((i * 40503) >> 5) as u8 & 3).collect();
    // Plant shared segments straddling every interesting boundary.
    let shared: Vec<u8> = (0..200).map(|i| [0u8, 3, 1, 2, 2, 1][i % 6]).collect();
    // Disjoint plant regions (same-phase overlaps would corrupt each
    // other): reference spots 50, tile−100, 2·tile−30; query spots 50,
    // tile−100, and a free mid-range slot.
    let spots = [
        (tile - 100, tile - 100),    // across the (1,1) tile corner
        (tile - 100, 50),            // reference row boundary only
        (50, tile - 100),            // query column boundary only
        (2 * tile - 30, tile + 180), // second row boundary
    ];
    for window in [
        (tile - 100)..(tile + 100),
        50..250,
        (2 * tile - 30)..(2 * tile + 170),
    ] {
        assert!(window.end <= n, "plants must fit: {window:?} vs {n}");
    }
    for &(r, q) in &spots {
        ref_codes[r..r + 200].copy_from_slice(&shared);
        query_codes[q..q + 200].copy_from_slice(&shared);
    }
    let reference = PackedSeq::from_codes(&ref_codes);
    let query = PackedSeq::from_codes(&query_codes);

    let expect = naive_mems(&reference, &query, 30);
    for &(r, q) in &spots {
        assert!(
            expect
                .iter()
                .any(|m| m.r <= r as u32 && m.r_end() >= (r + 200) as u32 && m.q <= q as u32),
            "planted segment at ({r},{q}) missing from ground truth"
        );
    }
    let got = gpumem.run(&reference, &query).unwrap().mems;
    assert_eq!(got, expect);
}

#[test]
fn output_is_invariant_to_launch_geometry() {
    let reference = GenomeModel::mammalian().generate(4_000, 91);
    let query = GenomeModel::mammalian().generate(3_000, 92);
    let reference_result = tiny_gpumem(14, 7, 8, 2)
        .run(&reference, &query)
        .unwrap()
        .mems;
    for (tau, n_block) in [(4usize, 1usize), (16, 4), (32, 8), (64, 1)] {
        let got = tiny_gpumem(14, 7, tau, n_block)
            .run(&reference, &query)
            .unwrap()
            .mems;
        assert_eq!(got, reference_result, "τ={tau}, n_block={n_block}");
    }
}

#[test]
fn output_is_invariant_to_step_choice() {
    let reference = GenomeModel::mammalian().generate(3_000, 93);
    let query = GenomeModel::mammalian().generate(2_000, 94);
    let min_len = 16;
    let expect = naive_mems(&reference, &query, min_len);
    for step in [1usize, 3, 7, 16 - 6 + 1] {
        let config = GpumemConfig::builder(min_len)
            .seed_len(6)
            .step(step)
            .threads_per_block(16)
            .blocks_per_tile(2)
            .build()
            .unwrap();
        let gpumem = Gpumem::with_device(config, Device::new(DeviceSpec::test_tiny()));
        assert_eq!(
            gpumem.run(&reference, &query).unwrap().mems,
            expect,
            "Δs = {step}"
        );
    }
}

#[test]
fn repeated_runs_are_bit_identical() {
    // Blocks race on rayon threads; the canonical output must not.
    let reference = GenomeModel::mammalian().generate(5_000, 95);
    let query = GenomeModel::mammalian().generate(4_000, 96);
    let gpumem = tiny_gpumem(12, 6, 16, 2);
    let first = gpumem.run(&reference, &query).unwrap();
    for _ in 0..3 {
        let again = gpumem.run(&reference, &query).unwrap();
        assert_eq!(again.mems, first.mems);
        assert_eq!(
            again.stats.matching.warp_cycles, first.stats.matching.warp_cycles,
            "modeled cost must be deterministic too"
        );
    }
}

#[test]
fn self_comparison_total_diagonal_survives_many_tiles() {
    let text = GenomeModel::mammalian().generate(6_000, 97);
    let gpumem = tiny_gpumem(25, 8, 8, 2);
    let tiles = text.len().div_ceil(gpumem.config().tile_len());
    assert!(tiles >= 3, "want a multi-tile run, got {tiles}");
    let mems = gpumem.run(&text, &text).unwrap().mems;
    assert!(mems.contains(&Mem {
        r: 0,
        q: 0,
        len: text.len() as u32
    }));
}

#[test]
fn device_spec_does_not_change_results() {
    let reference = GenomeModel::bacterial().generate(2_000, 98);
    let query = GenomeModel::bacterial().generate(1_500, 99);
    let config = GpumemConfig::builder(12)
        .seed_len(6)
        .threads_per_block(16)
        .blocks_per_tile(2)
        .build()
        .unwrap();
    let tiny = Gpumem::with_device(config.clone(), Device::new(DeviceSpec::test_tiny()))
        .run(&reference, &query)
        .unwrap();
    let k20 = Gpumem::with_device(config.clone(), Device::new(DeviceSpec::tesla_k20c()))
        .run(&reference, &query)
        .unwrap();
    let k40 = Gpumem::with_device(config, Device::new(DeviceSpec::tesla_k40()))
        .run(&reference, &query)
        .unwrap();
    assert_eq!(tiny.mems, k20.mems);
    assert_eq!(k20.mems, k40.mems);
    // The K40 (§V's "future work" card) models faster than the K20c.
    assert!(
        k40.stats.matching.modeled_secs() <= k20.stats.matching.modeled_secs(),
        "more SMs and higher clock cannot be slower"
    );
}
